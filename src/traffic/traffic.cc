#include "traffic.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/format.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace qei {
namespace traffic {

namespace {

/** Exponential draw with the given mean, strictly positive. */
double
expGap(Rng& rng, double mean)
{
    // 1 - uniform() is in (0, 1], so the log argument never hits 0.
    return -mean * std::log(1.0 - rng.uniform());
}

int
tenantFor(std::size_t index, int tenants)
{
    return tenants > 1 ? static_cast<int>(index % tenants) : 0;
}

} // namespace

ClosedLoop::ClosedLoop(int tenants) : tenants_(tenants > 0 ? tenants : 1)
{
}

std::string
ClosedLoop::description() const
{
    return "closed loop: next query arrives when the previous retires";
}

std::vector<Arrival>
ClosedLoop::schedule(std::size_t count)
{
    std::vector<Arrival> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = Arrival{0, i, tenantFor(i, tenants_)};
    return out;
}

PoissonOpenLoop::PoissonOpenLoop(double mean_gap_cycles,
                                 std::uint64_t seed, int tenants)
    : meanGap_(mean_gap_cycles), seed_(seed),
      tenants_(tenants > 0 ? tenants : 1)
{
    simAssert(mean_gap_cycles > 0.0,
              "PoissonOpenLoop: mean gap must be positive, got {}",
              mean_gap_cycles);
}

std::string
PoissonOpenLoop::description() const
{
    return fmt("open loop: Poisson arrivals, mean gap {:.1f} cycles",
               meanGap_);
}

std::vector<Arrival>
PoissonOpenLoop::schedule(std::size_t count)
{
    Rng rng(seed_);
    std::vector<Arrival> out(count);
    double clock = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        clock += expGap(rng, meanGap_);
        out[i] = Arrival{static_cast<Cycles>(clock), i,
                         tenantFor(i, tenants_)};
    }
    return out;
}

Bursty::Bursty(double mean_gap_cycles, double mean_burst,
               double intra_gap_cycles, std::uint64_t seed, int tenants)
    : meanGap_(mean_gap_cycles),
      meanBurst_(mean_burst >= 1.0 ? mean_burst : 1.0),
      intraGap_(intra_gap_cycles >= 0.0 ? intra_gap_cycles : 0.0),
      seed_(seed), tenants_(tenants > 0 ? tenants : 1)
{
    simAssert(mean_gap_cycles > 0.0,
              "Bursty: mean gap must be positive, got {}",
              mean_gap_cycles);
}

std::string
Bursty::description() const
{
    return fmt("bursty: geometric bursts (mean {:.1f}) at long-run "
               "mean gap {:.1f} cycles",
               meanBurst_, meanGap_);
}

std::vector<Arrival>
Bursty::schedule(std::size_t count)
{
    Rng rng(seed_);
    std::vector<Arrival> out(count);
    // A burst of B queries spends (B-1)*intraGap inside the burst, so
    // the idle gap between bursts must average B*meanGap minus that to
    // keep the long-run rate at 1/meanGap.
    const double interBurstMean =
        std::max(meanBurst_ * meanGap_ - (meanBurst_ - 1.0) * intraGap_,
                 1.0);
    double clock = 0.0;
    std::size_t emitted = 0;
    while (emitted < count) {
        clock += expGap(rng, interBurstMean);
        // Geometric burst size with mean meanBurst_ (support >= 1).
        std::size_t burst = 1;
        const double continueP = 1.0 - 1.0 / meanBurst_;
        while (rng.chance(continueP))
            ++burst;
        double at = clock;
        for (std::size_t b = 0; b < burst && emitted < count;
             ++b, ++emitted) {
            out[emitted] = Arrival{static_cast<Cycles>(at), emitted,
                                   tenantFor(emitted, tenants_)};
            at += intraGap_;
        }
        clock = at;
    }
    return out;
}

Diurnal::Diurnal(double mean_gap_cycles, double amplitude,
                 double period_cycles, std::uint64_t seed, int tenants)
    : meanGap_(mean_gap_cycles),
      amplitude_(amplitude < 0.0 ? 0.0
                                 : (amplitude > 0.95 ? 0.95 : amplitude)),
      period_(period_cycles), seed_(seed),
      tenants_(tenants > 0 ? tenants : 1)
{
    simAssert(mean_gap_cycles > 0.0,
              "Diurnal: mean gap must be positive, got {}",
              mean_gap_cycles);
    simAssert(period_cycles > 0.0,
              "Diurnal: period must be positive, got {}", period_cycles);
}

std::string
Diurnal::description() const
{
    return fmt("diurnal: Poisson with sinusoidal rate envelope "
               "(mean gap {:.1f} cycles, amplitude {:.2f}, "
               "period {:.0f} cycles)",
               meanGap_, amplitude_, period_);
}

std::vector<Arrival>
Diurnal::schedule(std::size_t count)
{
    Rng rng(seed_);
    std::vector<Arrival> out(count);
    const double twoPi = 2.0 * 3.14159265358979323846;
    double clock = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
        // Rate envelope evaluated at the current clock; the local mean
        // gap is the base gap divided by the envelope.
        const double envelope =
            1.0 + amplitude_ * std::sin(twoPi * clock / period_);
        clock += expGap(rng, meanGap_ / std::max(envelope, 0.05));
        out[i] = Arrival{static_cast<Cycles>(clock), i,
                         tenantFor(i, tenants_)};
    }
    return out;
}

TraceReplay::TraceReplay(std::vector<Cycles> ticks, int tenants)
    : ticks_(std::move(ticks)), tenants_(tenants > 0 ? tenants : 1)
{
    simAssert(!ticks_.empty(), "TraceReplay: empty trace");
    for (std::size_t i = 1; i < ticks_.size(); ++i)
        simAssert(ticks_[i] >= ticks_[i - 1],
                  "TraceReplay: ticks must be sorted ({} after {})",
                  ticks_[i], ticks_[i - 1]);
}

std::string
TraceReplay::description() const
{
    return fmt("replay: {} recorded arrival ticks, repeated with a "
               "span offset when more queries are requested",
               ticks_.size());
}

std::vector<Arrival>
TraceReplay::schedule(std::size_t count)
{
    std::vector<Arrival> out(count);
    // Repeats are shifted by the trace span plus one mean gap so the
    // wrapped stream keeps both the recorded shape and its rate.
    const Cycles span = ticks_.back() - ticks_.front();
    const Cycles meanGap =
        ticks_.size() > 1 ? std::max<Cycles>(span / (ticks_.size() - 1), 1)
                          : 1;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t lap = i / ticks_.size();
        const Cycles offset = static_cast<Cycles>(lap) * (span + meanGap);
        out[i] = Arrival{offset + ticks_[i % ticks_.size()], i,
                         tenantFor(i, tenants_)};
    }
    return out;
}

TenantMix::TenantMix(std::vector<Stream> streams)
    : streams_(std::move(streams))
{
    simAssert(!streams_.empty(), "TenantMix: no streams");
    for (const Stream& s : streams_) {
        simAssert(s.source != nullptr, "TenantMix: null sub-source");
        simAssert(s.weight > 0.0,
                  "TenantMix: weights must be positive, got {}",
                  s.weight);
    }
}

std::string
TenantMix::description() const
{
    std::string names;
    for (const Stream& s : streams_) {
        if (!names.empty())
            names += "+";
        names += s.source->name();
    }
    return fmt("mix: {} tenants ({}), weighted count split, merged by "
               "arrival tick",
               streams_.size(), names);
}

std::vector<Arrival>
TenantMix::schedule(std::size_t count)
{
    // Largest-remainder apportioning of count over the weights; wholly
    // deterministic, ties broken by tenant index.
    double sumW = 0.0;
    for (const Stream& s : streams_)
        sumW += s.weight;
    std::vector<std::size_t> share(streams_.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainder;
    std::size_t assigned = 0;
    for (std::size_t t = 0; t < streams_.size(); ++t) {
        const double exact = count * streams_[t].weight / sumW;
        share[t] = static_cast<std::size_t>(exact);
        assigned += share[t];
        remainder.emplace_back(exact - share[t], t);
    }
    std::stable_sort(remainder.begin(), remainder.end(),
                     [](const auto& a, const auto& b) {
                         if (a.first != b.first)
                             return a.first > b.first;
                         return a.second < b.second;
                     });
    for (std::size_t k = 0; assigned < count; ++k, ++assigned)
        ++share[remainder[k % remainder.size()].second];

    std::vector<Arrival> merged;
    merged.reserve(count);
    for (std::size_t t = 0; t < streams_.size(); ++t) {
        for (Arrival a : streams_[t].source->schedule(share[t])) {
            a.tenant = static_cast<int>(t);
            merged.push_back(a);
        }
    }
    // Merge by tick; ties keep tenant order (stable). queryIndex is
    // reassigned to the merged order so it indexes the Prepared
    // streams 0..count-1 as the Driver contract requires.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Arrival& a, const Arrival& b) {
                         if (a.tick != b.tick)
                             return a.tick < b.tick;
                         return a.tenant < b.tenant;
                     });
    for (std::size_t i = 0; i < merged.size(); ++i)
        merged[i].queryIndex = i;
    return merged;
}

std::vector<std::unique_ptr<TrafficSource>>
catalog()
{
    std::vector<std::unique_ptr<TrafficSource>> out;
    out.push_back(std::make_unique<ClosedLoop>());
    out.push_back(std::make_unique<PoissonOpenLoop>(100.0));
    out.push_back(std::make_unique<Bursty>(100.0));
    out.push_back(std::make_unique<Diurnal>(100.0));
    out.push_back(std::make_unique<TraceReplay>(
        std::vector<Cycles>{0, 40, 90, 200, 210, 500}));
    out.push_back(std::make_unique<TenantMix>(std::vector<TenantMix::Stream>{
        {std::make_shared<Bursty>(50.0), 2.0},
        {std::make_shared<PoissonOpenLoop>(100.0, 2), 1.0},
    }));
    return out;
}

} // namespace traffic
} // namespace qei
