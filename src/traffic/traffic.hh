/**
 * @file
 * Traffic layer: *when* queries arrive, decoupled from *what* they are.
 *
 * A Workload (src/workloads) builds data structures and prepares
 * matched query streams; a TrafficSource turns "N queries" into a
 * timeline of arrivals. The Driver (src/qei/driver.hh) consumes that
 * timeline: closed-loop sources delegate to the legacy back-to-back
 * issue loops (bit-identical to the historical runQei behaviour),
 * while open-loop sources feed an event-driven submit loop that
 * queues arrivals against QST capacity and measures sojourn time.
 *
 * Determinism contract: schedule() must be a pure function of the
 * constructor arguments (rate, seed, ...) and @p count — no global
 * state, no wall clock — so the same seed reproduces the same arrival
 * ticks regardless of --threads or which experiment cell runs first.
 */

#ifndef QEI_TRAFFIC_TRAFFIC_HH
#define QEI_TRAFFIC_TRAFFIC_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace qei {
namespace traffic {

/** One query entering the system. */
struct Arrival
{
    /** Absolute arrival tick, relative to the start of the run. */
    Cycles tick = 0;
    /** Index into the Prepared job/trace streams. */
    std::size_t queryIndex = 0;
    /** Logical tenant the query belongs to (0-based). */
    int tenant = 0;
};

/** Interface every arrival process implements. */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Short identifier ("closed", "poisson", "bursty"). */
    virtual std::string name() const = 0;

    /** Human-readable description for reports and --list output. */
    virtual std::string description() const = 0;

    /**
     * Produce the arrival timeline for @p count queries, sorted by
     * tick (ties keep queryIndex order). Must be deterministic: same
     * constructor arguments + same @p count => identical vector.
     */
    virtual std::vector<Arrival> schedule(std::size_t count) = 0;

    /**
     * True when the source has no arrival clock of its own — the next
     * query "arrives" the moment the previous one retires. The Driver
     * routes closed-loop sources through the legacy issue loops so
     * their results stay bit-identical to the pre-traffic-layer code.
     */
    virtual bool closedLoop() const { return false; }
};

/**
 * The historical behaviour: queries are issued back to back with no
 * think time. schedule() reports every arrival at tick 0 (the driver
 * never consults the ticks for a closed-loop source).
 */
class ClosedLoop : public TrafficSource
{
  public:
    explicit ClosedLoop(int tenants = 1);

    std::string name() const override { return "closed"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;
    bool closedLoop() const override { return true; }

  private:
    int tenants_;
};

/**
 * Open-loop Poisson arrivals: independent exponential inter-arrival
 * gaps with the given mean, the canonical cloud serving model. Tenants
 * are assigned round-robin in arrival order.
 */
class PoissonOpenLoop : public TrafficSource
{
  public:
    /**
     * @param mean_gap_cycles mean inter-arrival gap; the offered load
     *        is 1/mean_gap_cycles queries per cycle.
     * @param seed seeds the private Rng; same seed => same timeline.
     */
    PoissonOpenLoop(double mean_gap_cycles, std::uint64_t seed = 1,
                    int tenants = 1);

    std::string name() const override { return "poisson"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

    double meanGapCycles() const { return meanGap_; }

  private:
    double meanGap_;
    std::uint64_t seed_;
    int tenants_;
};

/**
 * Bursty arrivals: geometrically-sized bursts of back-to-back queries
 * separated by exponential idle gaps, sized so the long-run offered
 * load matches @p mean_gap_cycles. Stresses queueing far harder than
 * Poisson at the same average rate.
 */
class Bursty : public TrafficSource
{
  public:
    /**
     * @param mean_gap_cycles long-run mean inter-arrival gap.
     * @param mean_burst mean queries per burst (>= 1; geometric).
     * @param intra_gap_cycles fixed gap between queries inside a burst.
     */
    Bursty(double mean_gap_cycles, double mean_burst = 8.0,
           double intra_gap_cycles = 1.0, std::uint64_t seed = 1,
           int tenants = 1);

    std::string name() const override { return "bursty"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

  private:
    double meanGap_;
    double meanBurst_;
    double intraGap_;
    std::uint64_t seed_;
    int tenants_;
};

/**
 * Diurnal arrivals: Poisson draws whose instantaneous rate follows a
 * sinusoidal envelope, the classic day/night cloud traffic shape. At
 * simulation scale one "day" is @p period_cycles; the offered rate
 * swings between (1 - amplitude) and (1 + amplitude) times the base
 * rate 1/mean_gap_cycles.
 */
class Diurnal : public TrafficSource
{
  public:
    /**
     * @param mean_gap_cycles mean inter-arrival gap at the envelope
     *        midpoint (base offered load = 1/mean_gap_cycles).
     * @param amplitude peak-to-midpoint rate swing in [0, 1).
     * @param period_cycles length of one full envelope cycle.
     */
    Diurnal(double mean_gap_cycles, double amplitude = 0.5,
            double period_cycles = 50000.0, std::uint64_t seed = 1,
            int tenants = 1);

    std::string name() const override { return "diurnal"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

  private:
    double meanGap_;
    double amplitude_;
    double period_;
    std::uint64_t seed_;
    int tenants_;
};

/**
 * Trace replay: arrivals at explicit, recorded ticks. When asked for
 * more queries than the trace holds, the trace repeats shifted by its
 * own span (plus one mean gap), so long runs keep the recorded shape.
 */
class TraceReplay : public TrafficSource
{
  public:
    /**
     * @param ticks recorded arrival ticks (sorted ascending; must be
     *        non-empty).
     */
    explicit TraceReplay(std::vector<Cycles> ticks, int tenants = 1);

    std::string name() const override { return "replay"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

  private:
    std::vector<Cycles> ticks_;
    int tenants_;
};

/**
 * Multi-tenant merge: one sub-source per tenant, each producing its
 * weighted share of the total count; arrivals are merged by tick and
 * tagged with the owning tenant. This is how an adversarial deployment
 * is expressed — e.g. tenant 0 a Bursty source at several times the
 * rate of the Poisson background tenants.
 */
class TenantMix : public TrafficSource
{
  public:
    struct Stream
    {
        std::shared_ptr<TrafficSource> source;
        /** Fraction of the total query count (normalized over the
         *  streams; largest-remainder apportioning, deterministic). */
        double weight = 1.0;
    };

    explicit TenantMix(std::vector<Stream> streams);

    std::string name() const override { return "mix"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

    int tenants() const { return static_cast<int>(streams_.size()); }

  private:
    std::vector<Stream> streams_;
};

/**
 * One default-parameterized instance of every traffic source, for
 * enumeration (`--list-traffic`): name() + description() of each
 * available arrival process.
 */
std::vector<std::unique_ptr<TrafficSource>> catalog();

} // namespace traffic
} // namespace qei

#endif // QEI_TRAFFIC_TRAFFIC_HH
