/**
 * @file
 * Traffic layer: *when* queries arrive, decoupled from *what* they are.
 *
 * A Workload (src/workloads) builds data structures and prepares
 * matched query streams; a TrafficSource turns "N queries" into a
 * timeline of arrivals. The Driver (src/qei/driver.hh) consumes that
 * timeline: closed-loop sources delegate to the legacy back-to-back
 * issue loops (bit-identical to the historical runQei behaviour),
 * while open-loop sources feed an event-driven submit loop that
 * queues arrivals against QST capacity and measures sojourn time.
 *
 * Determinism contract: schedule() must be a pure function of the
 * constructor arguments (rate, seed, ...) and @p count — no global
 * state, no wall clock — so the same seed reproduces the same arrival
 * ticks regardless of --threads or which experiment cell runs first.
 */

#ifndef QEI_TRAFFIC_TRAFFIC_HH
#define QEI_TRAFFIC_TRAFFIC_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace qei {
namespace traffic {

/** One query entering the system. */
struct Arrival
{
    /** Absolute arrival tick, relative to the start of the run. */
    Cycles tick = 0;
    /** Index into the Prepared job/trace streams. */
    std::size_t queryIndex = 0;
    /** Logical tenant the query belongs to (0-based). */
    int tenant = 0;
};

/** Interface every arrival process implements. */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Short identifier ("closed", "poisson", "bursty"). */
    virtual std::string name() const = 0;

    /** Human-readable description for reports and --list output. */
    virtual std::string description() const = 0;

    /**
     * Produce the arrival timeline for @p count queries, sorted by
     * tick (ties keep queryIndex order). Must be deterministic: same
     * constructor arguments + same @p count => identical vector.
     */
    virtual std::vector<Arrival> schedule(std::size_t count) = 0;

    /**
     * True when the source has no arrival clock of its own — the next
     * query "arrives" the moment the previous one retires. The Driver
     * routes closed-loop sources through the legacy issue loops so
     * their results stay bit-identical to the pre-traffic-layer code.
     */
    virtual bool closedLoop() const { return false; }
};

/**
 * The historical behaviour: queries are issued back to back with no
 * think time. schedule() reports every arrival at tick 0 (the driver
 * never consults the ticks for a closed-loop source).
 */
class ClosedLoop : public TrafficSource
{
  public:
    explicit ClosedLoop(int tenants = 1);

    std::string name() const override { return "closed"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;
    bool closedLoop() const override { return true; }

  private:
    int tenants_;
};

/**
 * Open-loop Poisson arrivals: independent exponential inter-arrival
 * gaps with the given mean, the canonical cloud serving model. Tenants
 * are assigned round-robin in arrival order.
 */
class PoissonOpenLoop : public TrafficSource
{
  public:
    /**
     * @param mean_gap_cycles mean inter-arrival gap; the offered load
     *        is 1/mean_gap_cycles queries per cycle.
     * @param seed seeds the private Rng; same seed => same timeline.
     */
    PoissonOpenLoop(double mean_gap_cycles, std::uint64_t seed = 1,
                    int tenants = 1);

    std::string name() const override { return "poisson"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

    double meanGapCycles() const { return meanGap_; }

  private:
    double meanGap_;
    std::uint64_t seed_;
    int tenants_;
};

/**
 * Bursty arrivals: geometrically-sized bursts of back-to-back queries
 * separated by exponential idle gaps, sized so the long-run offered
 * load matches @p mean_gap_cycles. Stresses queueing far harder than
 * Poisson at the same average rate.
 */
class Bursty : public TrafficSource
{
  public:
    /**
     * @param mean_gap_cycles long-run mean inter-arrival gap.
     * @param mean_burst mean queries per burst (>= 1; geometric).
     * @param intra_gap_cycles fixed gap between queries inside a burst.
     */
    Bursty(double mean_gap_cycles, double mean_burst = 8.0,
           double intra_gap_cycles = 1.0, std::uint64_t seed = 1,
           int tenants = 1);

    std::string name() const override { return "bursty"; }
    std::string description() const override;
    std::vector<Arrival> schedule(std::size_t count) override;

  private:
    double meanGap_;
    double meanBurst_;
    double intraGap_;
    std::uint64_t seed_;
    int tenants_;
};

/**
 * One default-parameterized instance of every traffic source, for
 * enumeration (`--list-traffic`): name() + description() of each
 * available arrival process.
 */
std::vector<std::unique_ptr<TrafficSource>> catalog();

} // namespace traffic
} // namespace qei

#endif // QEI_TRAFFIC_TRAFFIC_HH
