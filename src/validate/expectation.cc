#include "expectation.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/table_printer.hh"

namespace qei::validate {

const char*
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Pass:
        return "PASS";
      case Verdict::Warn:
        return "WARN";
      case Verdict::Fail:
        return "FAIL";
    }
    return "FAIL";
}

Verdict
worseOf(Verdict a, Verdict b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

const char*
relationSymbol(Relation r)
{
    switch (r) {
      case Relation::Lt:
        return "<";
      case Relation::Le:
        return "<=";
      case Relation::Gt:
        return ">";
      case Relation::Ge:
        return ">=";
    }
    return "?";
}

Expectation
Expectation::range(std::string id, std::string paper_ref,
                   std::string description, std::string metric,
                   std::string unit, double lo, double hi,
                   double warn_tol, std::string note)
{
    Expectation e;
    e.id = std::move(id);
    e.paperRef = std::move(paper_ref);
    e.description = std::move(description);
    e.kind = Kind::Band;
    e.metric = std::move(metric);
    e.unit = std::move(unit);
    e.paperLo = e.bandLo = lo;
    e.paperHi = e.bandHi = hi;
    e.tolerance = warn_tol;
    e.note = std::move(note);
    return e;
}

Expectation
Expectation::near(std::string id, std::string paper_ref,
                  std::string description, std::string metric,
                  std::string unit, double value, double tol_rel,
                  double warn_tol, std::string note)
{
    Expectation e = range(std::move(id), std::move(paper_ref),
                          std::move(description), std::move(metric),
                          std::move(unit), value * (1.0 - tol_rel),
                          value * (1.0 + tol_rel), warn_tol,
                          std::move(note));
    e.paperLo = e.paperHi = value;
    return e;
}

Expectation
Expectation::exact(std::string id, std::string paper_ref,
                   std::string description, std::string metric,
                   std::string unit, double value, std::string note)
{
    return near(std::move(id), std::move(paper_ref),
                std::move(description), std::move(metric),
                std::move(unit), value, 0.0, 0.0, std::move(note));
}

Expectation
Expectation::reanchored(std::string id, std::string paper_ref,
                        std::string description, std::string metric,
                        std::string unit, double paper_lo,
                        double paper_hi, double gate_lo,
                        double gate_hi, double warn_tol,
                        std::string note)
{
    Expectation e = range(std::move(id), std::move(paper_ref),
                          std::move(description), std::move(metric),
                          std::move(unit), gate_lo, gate_hi, warn_tol,
                          std::move(note));
    e.paperLo = paper_lo;
    e.paperHi = paper_hi;
    return e;
}

Expectation
Expectation::ordering(std::string id, std::string paper_ref,
                      std::string description, std::string metric,
                      Relation relation, std::string metric_b,
                      double slack, std::string note,
                      double warn_slack)
{
    Expectation e;
    e.id = std::move(id);
    e.paperRef = std::move(paper_ref);
    e.description = std::move(description);
    e.kind = Kind::Ordering;
    e.metric = std::move(metric);
    e.metricB = std::move(metric_b);
    e.relation = relation;
    e.tolerance = slack;
    e.warnSlack = warn_slack < 0.0 ? slack + 0.10 : warn_slack;
    e.note = std::move(note);
    return e;
}

Expectation
Expectation::shape(std::string id, std::string paper_ref,
                   std::string description, bool holds,
                   std::string measured_text, std::string note)
{
    Expectation e;
    e.id = std::move(id);
    e.paperRef = std::move(paper_ref);
    e.description = std::move(description);
    e.kind = Kind::Shape;
    e.holds = holds;
    e.measuredText = std::move(measured_text);
    e.note = std::move(note);
    return e;
}

namespace {

/** Resolve a numeric metric; false when absent or non-numeric. */
bool
resolveNumber(const Json& report, const std::string& path, double* out)
{
    const Json* node = report.resolve(path);
    if (node == nullptr || !node->isNumber())
        return false;
    *out = node->asDouble();
    return true;
}

Outcome
evaluateBand(const Expectation& e, const Json& report)
{
    Outcome out;
    out.expectation = e;
    if (!resolveNumber(report, e.metric, &out.measured)) {
        out.verdict = Verdict::Fail;
        out.detail = "metric '" + e.metric + "' missing from artifact";
        return out;
    }
    out.haveMeasured = true;
    const double m = out.measured;
    if (m >= e.bandLo && m <= e.bandHi) {
        out.verdict = Verdict::Pass;
    } else {
        const double margin =
            e.tolerance *
            std::max(std::fabs(e.bandLo), std::fabs(e.bandHi));
        out.verdict = (m >= e.bandLo - margin && m <= e.bandHi + margin)
                          ? Verdict::Warn
                          : Verdict::Fail;
    }
    out.detail = formatValue(m, e.unit) + " vs gate [" +
                 formatValue(e.bandLo, e.unit) + ", " +
                 formatValue(e.bandHi, e.unit) + "]";
    return out;
}

Outcome
evaluateOrdering(const Expectation& e, const Json& report)
{
    Outcome out;
    out.expectation = e;
    const bool haveA = resolveNumber(report, e.metric, &out.measured);
    const bool haveB =
        resolveNumber(report, e.metricB, &out.measuredB);
    out.haveMeasured = haveA;
    out.haveMeasuredB = haveB;
    if (!haveA || !haveB) {
        out.verdict = Verdict::Fail;
        out.detail = "metric '" + (haveA ? e.metricB : e.metric) +
                     "' missing from artifact";
        return out;
    }
    // PASS while the relation holds against the RHS relaxed by
    // `tolerance`, WARN while it holds against the `warnSlack`
    // relaxation, FAIL beyond.
    const double a = out.measured;
    const double b = out.measuredB;
    bool pass = false;
    bool warn = false;
    const bool upward =
        e.relation == Relation::Lt || e.relation == Relation::Le;
    const double passRhs =
        b * (upward ? 1.0 + e.tolerance : 1.0 - e.tolerance);
    const double warnRhs =
        b * (upward ? 1.0 + e.warnSlack : 1.0 - e.warnSlack);
    switch (e.relation) {
      case Relation::Lt:
        pass = a < passRhs;
        warn = a < warnRhs;
        break;
      case Relation::Le:
        pass = a <= passRhs;
        warn = a <= warnRhs;
        break;
      case Relation::Gt:
        pass = a > passRhs;
        warn = a > warnRhs;
        break;
      case Relation::Ge:
        pass = a >= passRhs;
        warn = a >= warnRhs;
        break;
    }
    out.verdict = pass ? Verdict::Pass
                       : (warn ? Verdict::Warn : Verdict::Fail);
    out.detail = formatValue(a, e.unit) + " " +
                 relationSymbol(e.relation) + " " +
                 formatValue(b, e.unit) +
                 (e.tolerance != 0.0
                      ? " (slack " + formatValue(e.tolerance, "%") + ")"
                      : "") +
                 (pass ? "" : " violated");
    return out;
}

} // namespace

Outcome
evaluate(const Expectation& e, const Json& report)
{
    switch (e.kind) {
      case Kind::Band:
        return evaluateBand(e, report);
      case Kind::Ordering:
        return evaluateOrdering(e, report);
      case Kind::Shape:
        break;
    }
    Outcome out;
    out.expectation = e;
    out.verdict = e.holds ? Verdict::Pass : Verdict::Fail;
    out.detail = e.measuredText;
    return out;
}

std::vector<Outcome>
evaluate(const Suite& suite, const Json& report)
{
    std::vector<Outcome> outcomes;
    outcomes.reserve(suite.expectations.size());
    for (const Expectation& e : suite.expectations)
        outcomes.push_back(evaluate(e, report));
    return outcomes;
}

Verdict
overall(const std::vector<Outcome>& outcomes)
{
    Verdict v = Verdict::Pass;
    for (const Outcome& o : outcomes)
        v = worseOf(v, o.verdict);
    return v;
}

std::string
formatValue(double value, const std::string& unit)
{
    char buf[64];
    if (unit == "%") {
        std::snprintf(buf, sizeof(buf), "%.1f%%", value * 100.0);
    } else if (unit == "x") {
        std::snprintf(buf, sizeof(buf), "%.2fx", value);
    } else {
        std::snprintf(buf, sizeof(buf), "%.4g", value);
        std::string text(buf);
        if (!unit.empty())
            text += " " + unit;
        return text;
    }
    return buf;
}

std::string
formatPaper(const Expectation& e)
{
    switch (e.kind) {
      case Kind::Band:
        if (e.paperLo == e.paperHi)
            return formatValue(e.paperLo, e.unit);
        return formatValue(e.paperLo, e.unit) + "~" +
               formatValue(e.paperHi, e.unit);
      case Kind::Ordering:
        return "`" + e.metric + "` " + relationSymbol(e.relation) +
               " `" + e.metricB + "`";
      case Kind::Shape:
        return "(shape)";
    }
    return "";
}

std::string
formatMeasured(const Outcome& outcome)
{
    const Expectation& e = outcome.expectation;
    switch (e.kind) {
      case Kind::Band:
        return outcome.haveMeasured
                   ? formatValue(outcome.measured, e.unit)
                   : "(missing)";
      case Kind::Ordering:
        if (!outcome.haveMeasured || !outcome.haveMeasuredB)
            return "(missing)";
        return formatValue(outcome.measured, e.unit) + " vs " +
               formatValue(outcome.measuredB, e.unit);
      case Kind::Shape:
        return e.measuredText;
    }
    return "";
}

Json
toJson(const Suite& suite, const std::vector<Outcome>& outcomes)
{
    Json block = Json::object();
    block["title"] = suite.title;
    if (!suite.preamble.empty())
        block["preamble"] = suite.preamble;

    int pass = 0;
    int warn = 0;
    int fail = 0;
    Json list = Json::array();
    for (const Outcome& o : outcomes) {
        const Expectation& e = o.expectation;
        Json one = Json::object();
        one["id"] = e.id;
        one["paper_ref"] = e.paperRef;
        one["description"] = e.description;
        switch (e.kind) {
          case Kind::Band:
            one["kind"] = "band";
            break;
          case Kind::Ordering:
            one["kind"] = "ordering";
            break;
          case Kind::Shape:
            one["kind"] = "shape";
            break;
        }
        if (!e.metric.empty())
            one["metric"] = e.metric;
        if (!e.metricB.empty()) {
            one["metric_b"] = e.metricB;
            one["relation"] = relationSymbol(e.relation);
        }
        one["paper"] = formatPaper(e);
        one["measured"] = formatMeasured(o);
        if (e.kind == Kind::Band) {
            one["paper_lo"] = e.paperLo;
            one["paper_hi"] = e.paperHi;
            one["gate_lo"] = e.bandLo;
            one["gate_hi"] = e.bandHi;
            one["tolerance"] = e.tolerance;
        } else if (e.kind == Kind::Ordering) {
            one["slack"] = e.tolerance;
            one["warn_slack"] = e.warnSlack;
        }
        if (o.haveMeasured)
            one["value"] = o.measured;
        if (o.haveMeasuredB)
            one["value_b"] = o.measuredB;
        one["verdict"] = verdictName(o.verdict);
        one["detail"] = o.detail;
        if (!e.note.empty())
            one["note"] = e.note;
        list.push_back(std::move(one));

        switch (o.verdict) {
          case Verdict::Pass:
            ++pass;
            break;
          case Verdict::Warn:
            ++warn;
            break;
          case Verdict::Fail:
            ++fail;
            break;
        }
    }
    block["expectations"] = std::move(list);
    Json counts = Json::object();
    counts["pass"] = pass;
    counts["warn"] = warn;
    counts["fail"] = fail;
    block["counts"] = std::move(counts);
    block["verdict"] = verdictName(overall(outcomes));
    return block;
}

void
printOutcomes(const std::string& bench_name,
              const std::vector<Outcome>& outcomes)
{
    TablePrinter table("validation: " + bench_name);
    table.header({"verdict", "check", "paper ref", "paper", "measured",
                  "detail"});
    int pass = 0;
    int warn = 0;
    int fail = 0;
    for (const Outcome& o : outcomes) {
        table.row({verdictName(o.verdict), o.expectation.id,
                   o.expectation.paperRef,
                   formatPaper(o.expectation), formatMeasured(o),
                   o.detail});
        switch (o.verdict) {
          case Verdict::Pass:
            ++pass;
            break;
          case Verdict::Warn:
            ++warn;
            break;
          case Verdict::Fail:
            ++fail;
            break;
        }
    }
    table.print();
    std::printf("validation verdict: %s (%d pass, %d warn, %d fail)\n",
                verdictName(overall(outcomes)), pass, warn, fail);
}

} // namespace qei::validate
