/**
 * @file
 * Paper-fidelity expectations: typed, machine-readable statements of
 * what a benchmark harness's BenchReport artifact must show for the
 * reproduction to still match the paper.
 *
 * Each of the bench harnesses declares a Suite of expectations —
 * point values, ranges, orderings, and qualitative shape assertions —
 * evaluated against the harness's own `--json` payload. The same
 * metadata drives three consumers that therefore can never disagree:
 * the per-harness `--validate` PASS/WARN/FAIL table (and exit code),
 * the `qei-validate` whole-suite gate, and the generated
 * `EXPERIMENTS.md` paper-vs-measured tables. `docs/validation.md`
 * documents the semantics and the band-update procedure.
 */

#ifndef QEI_VALIDATE_EXPECTATION_HH
#define QEI_VALIDATE_EXPECTATION_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace qei::validate {

/** Per-expectation evaluation result, worst-first severity order. */
enum class Verdict { Pass, Warn, Fail };

const char* verdictName(Verdict v);

/** The more severe of the two verdicts. */
Verdict worseOf(Verdict a, Verdict b);

/** How an Expectation is evaluated. */
enum class Kind {
    Band,     ///< measured metric inside [bandLo, bandHi]
    Ordering, ///< metric vs metricB under a relation
    Shape,    ///< qualitative predicate the harness computed
};

/** Comparison for Kind::Ordering. */
enum class Relation { Lt, Le, Gt, Ge };

const char* relationSymbol(Relation r);

/**
 * One typed expectation. Quantitative kinds name their measured value
 * by a Json::resolve() path into the harness's artifact; the *paper*
 * band is what the paper states (display only), the *gate* band is
 * what the evaluation enforces. The two coincide except for the
 * documented known deltas, where the gate band is re-anchored to the
 * model and `note` carries the justification.
 */
struct Expectation
{
    std::string id;          ///< short slug, unique within a harness
    std::string paperRef;    ///< "Fig. 7", "Tab. III", "Sec. IV-D"…
    std::string description; ///< one human-readable sentence
    Kind kind = Kind::Shape;

    /** Display formatting: "" (plain), "x", "%", "cyc", "mm^2", … */
    std::string unit;

    std::string metric;  ///< Json::resolve path of the measured value
    std::string metricB; ///< ordering right-hand side path

    double paperLo = 0.0; ///< paper band (display); point when lo==hi
    double paperHi = 0.0;
    double bandLo = 0.0;  ///< gate band, PASS when inside (inclusive)
    double bandHi = 0.0;
    /**
     * Band: relative widening (of max(|bandLo|,|bandHi|)) that still
     * rates WARN instead of FAIL. Ordering: relative slack on the
     * right-hand side within which the relation still PASSes ("on
     * par with" claims use a non-zero slack).
     */
    double tolerance = 0.0;
    /**
     * Ordering only: relative slack beyond `tolerance` within which
     * a violated relation rates WARN instead of FAIL. Defaults to
     * tolerance + 0.10 in the factory.
     */
    double warnSlack = 0.0;

    Relation relation = Relation::Lt; ///< ordering only

    bool holds = false;        ///< shape: the precomputed predicate
    std::string measuredText;  ///< shape: measured summary to display

    std::string note; ///< known-delta justification / context

    // -- factories --

    /** Paper band == gate band; PASS inside, WARN within widening. */
    static Expectation range(std::string id, std::string paper_ref,
                             std::string description,
                             std::string metric, std::string unit,
                             double lo, double hi,
                             double warn_tol = 0.15,
                             std::string note = {});

    /** Point value with a relative PASS tolerance (gate band
     *  [v*(1-tol), v*(1+tol)]) and a WARN widening beyond it. */
    static Expectation near(std::string id, std::string paper_ref,
                            std::string description,
                            std::string metric, std::string unit,
                            double value, double tol_rel,
                            double warn_tol = 0.10,
                            std::string note = {});

    /** Exact value (configuration constants); any deviation FAILs. */
    static Expectation exact(std::string id, std::string paper_ref,
                             std::string description,
                             std::string metric, std::string unit,
                             double value, std::string note = {});

    /** Paper band displayed as stated, gate band re-anchored to the
     *  model; @p note must say why (the known-delta record). */
    static Expectation reanchored(std::string id,
                                  std::string paper_ref,
                                  std::string description,
                                  std::string metric, std::string unit,
                                  double paper_lo, double paper_hi,
                                  double gate_lo, double gate_hi,
                                  double warn_tol, std::string note);

    /**
     * metric <relation> metricB. PASS when the relation holds with
     * the right-hand side relaxed by @p slack ("on par" claims set a
     * non-zero slack); WARN up to @p warn_slack (default
     * slack + 0.10); FAIL beyond.
     */
    static Expectation ordering(std::string id, std::string paper_ref,
                                std::string description,
                                std::string metric, Relation relation,
                                std::string metric_b,
                                double slack = 0.0,
                                std::string note = {},
                                double warn_slack = -1.0);

    /** Qualitative assertion the harness evaluated itself. */
    static Expectation shape(std::string id, std::string paper_ref,
                             std::string description, bool holds,
                             std::string measured_text,
                             std::string note = {});
};

/** One evaluated expectation: verdict plus the measured values. */
struct Outcome
{
    Expectation expectation;
    Verdict verdict = Verdict::Fail;
    bool haveMeasured = false;  ///< metric resolved to a number
    double measured = 0.0;
    bool haveMeasuredB = false; ///< ordering RHS resolved
    double measuredB = 0.0;
    std::string detail; ///< short human summary ("6.2x in [5.0, 8.0]")
};

/** A harness's full expectation table plus its EXPERIMENTS.md face. */
struct Suite
{
    /** Section heading, e.g. "Fig. 7 — ROI speedup per workload x
     *  scheme". The bench name is appended automatically. */
    std::string title;
    /** Narrative paragraph(s) rendered above the table. */
    std::string preamble;
    std::vector<Expectation> expectations;
};

/** Evaluate one expectation against a harness artifact. */
Outcome evaluate(const Expectation& e, const Json& report);

/** Evaluate a whole suite, in declaration order. */
std::vector<Outcome> evaluate(const Suite& suite, const Json& report);

/** The worst verdict in @p outcomes (Pass when empty). */
Verdict overall(const std::vector<Outcome>& outcomes);

/**
 * Format @p value in @p unit for tables: "%" renders value*100 with
 * one decimal and a trailing '%', "x" two decimals and 'x', otherwise
 * up-to-4-significant-digit text plus " unit". Deterministic, so
 * generated docs are byte-stable.
 */
std::string formatValue(double value, const std::string& unit);

/** The paper band / relation / shape column for @p e. */
std::string formatPaper(const Expectation& e);

/** The measured column for @p outcome. */
std::string formatMeasured(const Outcome& outcome);

/**
 * The full "validation" block embedded in the BenchReport artifact:
 * title, preamble, per-expectation records (metadata + measured +
 * verdict), counts, and the folded verdict.
 */
Json toJson(const Suite& suite, const std::vector<Outcome>& outcomes);

/** Render the PASS/WARN/FAIL table `--validate` prints to stdout. */
void printOutcomes(const std::string& bench_name,
                   const std::vector<Outcome>& outcomes);

} // namespace qei::validate

#endif // QEI_VALIDATE_EXPECTATION_HH
