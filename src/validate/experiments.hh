/**
 * @file
 * Generator for EXPERIMENTS.md: folds the `validation` blocks of the
 * BENCH_*.json artifacts into the paper-vs-measured document, so the
 * committed docs are produced from exactly the metadata the CI gate
 * enforces. `tools/qei-validate` drives this; the committed file is
 * checked byte-identical against a regeneration in CI.
 */

#ifndef QEI_VALIDATE_EXPERIMENTS_HH
#define QEI_VALIDATE_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "common/json.hh"

namespace qei::validate {

/** The 16 harnesses in the paper's presentation order. */
const std::vector<std::string>& canonicalBenchOrder();

/**
 * Render the full EXPERIMENTS.md from harness artifacts (each a
 * parsed BENCH_*.json). Artifacts are ordered canonically (unknown
 * bench names, sorted, go last); artifacts without a `validation`
 * block get a placeholder section. Pure function of the inputs —
 * byte-stable across regenerations.
 */
std::string renderExperiments(const std::vector<Json>& artifacts);

} // namespace qei::validate

#endif // QEI_VALIDATE_EXPERIMENTS_HH
