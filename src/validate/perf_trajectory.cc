#include "perf_trajectory.hh"

#include <cmath>
#include <stdexcept>

#include "common/format.hh"

namespace qei::validate {

namespace {

constexpr int kSchemaVersion = 1;

double
numberOr(const Json& node, const char* key, double fallback)
{
    const Json* v = node.find(key);
    return v != nullptr && v->isNumber() ? v->asDouble() : fallback;
}

/** Relative growth of @p now over @p base; 0 when base is 0. */
double
relGrowth(double base, double now)
{
    return base != 0.0 ? (now - base) / base : 0.0;
}

/**
 * Recursively sum every numeric "cycles" field in @p node. The
 * deterministic-cost fallback for artifacts without a top-level
 * breakdown block (the sweep ablations report per-point cycle counts
 * instead of one aggregate): the sum is as bit-deterministic as any
 * single run, so it gates the same way.
 */
std::uint64_t
sumCyclesFields(const Json& node)
{
    std::uint64_t total = 0;
    if (node.isObject()) {
        for (const auto& [key, value] : node.items()) {
            if (key == "cycles" && value.isNumber())
                total += value.asUint();
            else
                total += sumCyclesFields(value);
        }
    } else if (node.isArray()) {
        for (const Json& element : node.elements())
            total += sumCyclesFields(element);
    }
    return total;
}

} // namespace

PerfEntry
foldArtifacts(const std::vector<Json>& artifacts, std::string label)
{
    PerfEntry entry;
    entry.label = std::move(label);
    for (const Json& artifact : artifacts) {
        if (!artifact.isObject() || !artifact.contains("bench"))
            continue;
        if (entry.gitSha.empty()) {
            if (const Json* sha = artifact.find("git_sha"))
                entry.gitSha = sha->asString();
        }
        PerfBenchSample sample;
        if (const Json* breakdown = artifact.find("breakdown")) {
            sample.meanCyclesPerQuery =
                numberOr(*breakdown, "mean_cycles_per_query", 0.0);
            if (const Json* e = breakdown->find("end_to_end_cycles"))
                sample.endToEndCycles = e->asUint();
            if (const Json* q = breakdown->find("queries"))
                sample.queries = q->asUint();
        } else {
            sample.endToEndCycles = sumCyclesFields(artifact);
        }
        sample.hostWallMs = numberOr(artifact, "host_wall_ms", 0.0);
        if (const Json* host = artifact.find("host")) {
            sample.simEventsPerSec =
                numberOr(*host, "sim_events_per_sec", 0.0);
        }
        entry.benches[artifact.at("bench").asString()] = sample;
    }
    return entry;
}

Json
toJson(const PerfEntry& entry)
{
    Json out = Json::object();
    out["label"] = entry.label;
    out["git_sha"] = entry.gitSha;
    Json benches = Json::object();
    for (const auto& [name, s] : entry.benches) {
        Json b = Json::object();
        b["mean_cycles_per_query"] = s.meanCyclesPerQuery;
        b["end_to_end_cycles"] = s.endToEndCycles;
        b["queries"] = s.queries;
        b["host_wall_ms"] = s.hostWallMs;
        b["sim_events_per_sec"] = s.simEventsPerSec;
        benches[name] = std::move(b);
    }
    out["benches"] = std::move(benches);
    return out;
}

PerfEntry
entryFromJson(const Json& json)
{
    PerfEntry entry;
    if (const Json* label = json.find("label"))
        entry.label = label->asString();
    if (const Json* sha = json.find("git_sha"))
        entry.gitSha = sha->asString();
    if (const Json* benches = json.find("benches")) {
        for (const auto& [name, b] : benches->items()) {
            PerfBenchSample s;
            s.meanCyclesPerQuery =
                numberOr(b, "mean_cycles_per_query", 0.0);
            if (const Json* e = b.find("end_to_end_cycles"))
                s.endToEndCycles = e->asUint();
            if (const Json* q = b.find("queries"))
                s.queries = q->asUint();
            s.hostWallMs = numberOr(b, "host_wall_ms", 0.0);
            s.simEventsPerSec =
                numberOr(b, "sim_events_per_sec", 0.0);
            entry.benches[name] = s;
        }
    }
    return entry;
}

Json
emptyTrajectory()
{
    Json out = Json::object();
    out["schema_version"] = kSchemaVersion;
    out["entries"] = Json::array();
    return out;
}

void
appendEntry(Json& trajectory, const PerfEntry& entry)
{
    trajectory["entries"].push_back(toJson(entry));
}

std::vector<PerfEntry>
entriesOf(const Json& trajectory)
{
    const Json* entries =
        trajectory.isObject() ? trajectory.find("entries") : nullptr;
    if (entries == nullptr || !entries->isArray())
        throw std::runtime_error(
            "perf trajectory: no \"entries\" array");
    std::vector<PerfEntry> out;
    for (const Json& e : entries->elements())
        out.push_back(entryFromJson(e));
    return out;
}

PerfCheckResult
checkAgainst(const PerfEntry& baseline, const PerfEntry& candidate,
             const PerfCheckConfig& config)
{
    PerfCheckResult result;
    for (const auto& [name, base] : baseline.benches) {
        auto it = candidate.benches.find(name);
        if (it == candidate.benches.end()) {
            result.notes.push_back(
                fmt("{}: in baseline '{}' but not in the candidate "
                    "set",
                    name, baseline.label));
            continue;
        }
        const PerfBenchSample& now = it->second;
        if (base.queries != now.queries) {
            result.notes.push_back(
                fmt("{}: query count changed ({} -> {}), cycle "
                    "comparison skipped",
                    name, base.queries, now.queries));
            continue;
        }
        // Simulation metrics are deterministic, so any growth beyond
        // the (small) tolerance is a real model-side regression.
        // mean_cycles_per_query is the primary gate; harnesses without
        // a breakdown block gate on the summed per-point cycle counts
        // instead.
        if (base.meanCyclesPerQuery > 0.0) {
            const double simGrowth = relGrowth(
                base.meanCyclesPerQuery, now.meanCyclesPerQuery);
            if (simGrowth > config.simTolerance) {
                result.regressions.push_back(
                    fmt("{}: mean_cycles_per_query {:.2f} -> {:.2f} "
                        "(+{:.1f}%, tolerance {:.1f}%)",
                        name, base.meanCyclesPerQuery,
                        now.meanCyclesPerQuery, simGrowth * 100.0,
                        config.simTolerance * 100.0));
            }
        } else {
            const double cycleGrowth = relGrowth(
                static_cast<double>(base.endToEndCycles),
                static_cast<double>(now.endToEndCycles));
            if (cycleGrowth > config.simTolerance) {
                result.regressions.push_back(
                    fmt("{}: end_to_end_cycles {} -> {} "
                        "(+{:.1f}%, tolerance {:.1f}%)",
                        name, base.endToEndCycles, now.endToEndCycles,
                        cycleGrowth * 100.0,
                        config.simTolerance * 100.0));
            }
        }
        if (config.hostTolerance > 0.0) {
            const double wallGrowth =
                relGrowth(base.hostWallMs, now.hostWallMs);
            if (wallGrowth > config.hostTolerance) {
                result.regressions.push_back(
                    fmt("{}: host_wall_ms {:.1f} -> {:.1f} "
                        "(+{:.1f}%, tolerance {:.1f}%)",
                        name, base.hostWallMs, now.hostWallMs,
                        wallGrowth * 100.0,
                        config.hostTolerance * 100.0));
            }
            const double rateLoss = -relGrowth(base.simEventsPerSec,
                                               now.simEventsPerSec);
            if (base.simEventsPerSec > 0.0 &&
                rateLoss > config.hostTolerance) {
                result.regressions.push_back(
                    fmt("{}: sim_events_per_sec {:.0f} -> {:.0f} "
                        "(-{:.1f}%, tolerance {:.1f}%)",
                        name, base.simEventsPerSec,
                        now.simEventsPerSec, rateLoss * 100.0,
                        config.hostTolerance * 100.0));
            }
        }
    }
    for (const auto& [name, sample] : candidate.benches) {
        (void)sample;
        if (baseline.benches.find(name) == baseline.benches.end()) {
            result.notes.push_back(
                fmt("{}: new bench, no baseline in '{}'", name,
                    baseline.label));
        }
    }
    result.ok = result.regressions.empty();
    return result;
}

} // namespace qei::validate
