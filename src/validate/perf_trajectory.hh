/**
 * @file
 * Perf trajectory: fold the host/sim self-metrics of successive
 * BENCH_*.json artifact sets into one append-only trajectory file and
 * gate new runs against it.
 *
 * One *entry* summarises one artifact set (one CI run, one local
 * sweep): per bench, the deterministic simulation metrics
 * (mean_cycles_per_query, end_to_end_cycles, queries from the
 * top-level breakdown) plus the host self-metrics BenchReport stamps
 * (host_wall_ms, host.sim_events_per_sec). check() compares a
 * candidate entry against the trajectory's most recent entry:
 *  - simulation metrics are bit-deterministic, so they gate tightly
 *    (default 2% on mean_cycles_per_query) on every run;
 *  - host metrics are machine-dependent, so they gate only when a
 *    host tolerance is explicitly requested (local A/B runs on one
 *    machine), never by default in CI.
 *
 * The `tools/qei-perf` CLI is a thin wrapper over this header so the
 * fold/check logic stays unit-testable.
 */

#ifndef QEI_VALIDATE_PERF_TRAJECTORY_HH
#define QEI_VALIDATE_PERF_TRAJECTORY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace qei::validate {

/** One bench's perf sample inside one trajectory entry. */
struct PerfBenchSample
{
    // Deterministic simulation metrics (identical on every host).
    double meanCyclesPerQuery = 0.0;
    std::uint64_t endToEndCycles = 0;
    std::uint64_t queries = 0;
    // Host self-metrics (machine-dependent; informational by default).
    double hostWallMs = 0.0;
    double simEventsPerSec = 0.0;
};

/** One artifact set folded into one trajectory point. */
struct PerfEntry
{
    std::string label;
    std::string gitSha;
    /** Keyed by the artifact's "bench" name. */
    std::map<std::string, PerfBenchSample> benches;
};

/**
 * Fold parsed BENCH_*.json artifacts into one entry. Artifacts
 * without a "bench" name or a usable breakdown are skipped (a
 * harness with no per-query breakdown contributes host metrics
 * only). The git SHA is taken from the first artifact carrying one.
 */
PerfEntry foldArtifacts(const std::vector<Json>& artifacts,
                        std::string label);

Json toJson(const PerfEntry& entry);
PerfEntry entryFromJson(const Json& json);

/** Empty trajectory document ({"schema_version", "entries": []}). */
Json emptyTrajectory();

/** Append @p entry to @p trajectory's "entries" array. */
void appendEntry(Json& trajectory, const PerfEntry& entry);

/** Entries of @p trajectory, oldest first; throws on a malformed
 *  document. */
std::vector<PerfEntry> entriesOf(const Json& trajectory);

/** Tolerances for checkAgainst(). */
struct PerfCheckConfig
{
    /** Relative gate on mean_cycles_per_query (deterministic). */
    double simTolerance = 0.02;
    /**
     * Relative gate on host_wall_ms growth and sim_events_per_sec
     * loss; <= 0 (the default) leaves host metrics ungated — they
     * only make sense when baseline and candidate ran on one machine.
     */
    double hostTolerance = 0.0;
};

/** Outcome of gating one candidate entry against a baseline. */
struct PerfCheckResult
{
    bool ok = true;
    /** Gate violations; non-empty implies !ok. */
    std::vector<std::string> regressions;
    /** Non-gating observations (bench added/removed, query-count
     *  change making the comparison meaningless, ...). */
    std::vector<std::string> notes;
};

/**
 * Gate @p candidate against @p baseline. A bench whose query count
 * changed is reported as a note and not gated (the workload
 * configuration changed, so cycle comparisons are meaningless);
 * benches present on only one side are notes as well.
 */
PerfCheckResult checkAgainst(const PerfEntry& baseline,
                             const PerfEntry& candidate,
                             const PerfCheckConfig& config = {});

} // namespace qei::validate

#endif // QEI_VALIDATE_PERF_TRAJECTORY_HH
