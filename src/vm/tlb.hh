/**
 * @file
 * TLB and MMU timing models.
 *
 * The MMU composes an L1 data TLB and an L2 (second-level) TLB in front
 * of a page-walk latency model. QEI's Core-integrated scheme borrows
 * the L2-TLB; the CHA-TLB scheme instantiates a dedicated 1024-entry
 * Tlb per CHA; the CHA-noTLB scheme pays a NoC round trip to the core
 * MMU instead.
 */

#ifndef QEI_VM_TLB_HH
#define QEI_VM_TLB_HH

#include <cstdint>
#include <list>
#include <vector>
#include <unordered_map>

#include "common/sim_object.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"
#include "vm/virtual_memory.hh"

namespace qei {

/** Fully-associative LRU TLB over 4 KB pages. */
class Tlb : public SimObject
{
  public:
    Tlb(std::size_t entries, Cycles hit_latency,
        std::string name = "tlb")
        : SimObject(std::move(name)), capacity_(entries),
          hitLatency_(hit_latency)
    {
    }

    void
    regStats(StatsRegistry& registry) override
    {
        const std::string base = fullPath() + ".";
        registry.addCounter(base + "hits", hits_, "lookup hits");
        registry.addCounter(base + "misses", misses_, "lookup misses");
        registry.addCounter(base + "flushes", flushes_,
                            "full flushes");
        registry.addFormula(
            base + "hit_rate", [this] { return hitRate(); },
            "hits / (hits + misses)");
    }

    /** True and refreshed-to-MRU when @p vpn is cached. */
    bool
    lookup(Addr vpn)
    {
        auto it = index_.find(vpn);
        if (it == index_.end()) {
            misses_.inc();
            return false;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.inc();
        return true;
    }

    /** Install @p vpn, evicting the LRU entry when full. */
    void
    fill(Addr vpn)
    {
        if (index_.contains(vpn))
            return;
        if (lru_.size() >= capacity_) {
            index_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(vpn);
        index_[vpn] = lru_.begin();
    }

    /** Pre-fill with up to capacity entries (steady-state warm TLB). */
    void
    prefill(const std::vector<Addr>& vpns)
    {
        for (Addr vpn : vpns) {
            if (lru_.size() >= capacity_)
                break;
            fill(vpn);
        }
    }

    /** Drop all entries (context switch / shootdown). */
    void
    flush()
    {
        lru_.clear();
        index_.clear();
        flushes_.inc();
    }

    Cycles hitLatency() const { return hitLatency_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return lru_.size(); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRate() const
    {
        const auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(hits_.value()) / total : 0.0;
    }

  private:
    std::size_t capacity_;
    Cycles hitLatency_;
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> index_;
    Counter hits_;
    Counter misses_;
    Counter flushes_;
};

/** Outcome of one translation through the MMU. */
struct Translation
{
    bool valid = false;   ///< false ⇒ page fault
    Addr paddr = 0;
    Cycles latency = 0;   ///< total translation cost
    bool l1Hit = false;
    bool l2Hit = false;
    bool walked = false;
};

/** MMU parameters (Skylake-like defaults; see Tab. II discussion). */
struct MmuParams
{
    std::size_t l1Entries = 64;
    Cycles l1HitLatency = 1;
    std::size_t l2Entries = 1536;
    Cycles l2HitLatency = 9;
    Cycles pageWalkLatency = 90;
};

/** Two-level TLB + page-walk front door for one core. */
class Mmu : public SimObject
{
  public:
    Mmu(const VirtualMemory& vm, const MmuParams& params = {})
        : SimObject("mmu"), vm_(vm), params_(params),
          l1_(params.l1Entries, params.l1HitLatency, "l1tlb"),
          l2_(params.l2Entries, params.l2HitLatency, "l2tlb")
    {
        adopt(l1_);
        adopt(l2_);
    }

    /**
     * Translate @p vaddr and report the latency of the translation
     * path actually taken (L1 hit / L2 hit / full walk). @p now is
     * only used to timestamp trace events.
     */
    Translation
    translate(Addr vaddr, Cycles now = 0)
    {
        Translation t;
        const Addr vpn = pageNumber(vaddr);
        auto paddr = vm_.tryTranslate(vaddr);
        if (!paddr) {
            t.valid = false;
            t.latency = params_.pageWalkLatency;
            traceLookup(t, now);
            return t;
        }
        t.valid = true;
        t.paddr = *paddr;
        if (l1_.lookup(vpn)) {
            t.l1Hit = true;
            t.latency = params_.l1HitLatency;
            traceLookup(t, now);
            return t;
        }
        if (l2_.lookup(vpn)) {
            t.l2Hit = true;
            t.latency = params_.l1HitLatency + params_.l2HitLatency;
            l1_.fill(vpn);
            traceLookup(t, now);
            return t;
        }
        t.walked = true;
        t.latency = params_.l1HitLatency + params_.l2HitLatency +
                    params_.pageWalkLatency;
        l2_.fill(vpn);
        l1_.fill(vpn);
        vm_.notePageWalk(now, params_.pageWalkLatency);
        traceLookup(t, now);
        return t;
    }

    /**
     * Translate as QEI's Core-integrated scheme does: straight into the
     * L2-TLB (the accelerator sits next to it and does not touch the
     * core's L1 dTLB).
     */
    Translation
    translateViaL2(Addr vaddr, Cycles now = 0)
    {
        Translation t;
        const Addr vpn = pageNumber(vaddr);
        auto paddr = vm_.tryTranslate(vaddr);
        if (!paddr) {
            t.valid = false;
            t.latency = params_.pageWalkLatency;
            traceLookup(t, now);
            return t;
        }
        t.valid = true;
        t.paddr = *paddr;
        if (l2_.lookup(vpn)) {
            t.l2Hit = true;
            t.latency = params_.l2HitLatency;
            traceLookup(t, now);
            return t;
        }
        t.walked = true;
        t.latency = params_.l2HitLatency + params_.pageWalkLatency;
        l2_.fill(vpn);
        vm_.notePageWalk(now, params_.pageWalkLatency);
        traceLookup(t, now);
        return t;
    }

    /** Pre-warm the second-level TLB (steady-state experiments). */
    void
    prefillL2(const std::vector<Addr>& vpns)
    {
        l2_.prefill(vpns);
    }

    void
    flush()
    {
        l1_.flush();
        l2_.flush();
    }

    Tlb& l1() { return l1_; }
    Tlb& l2() { return l2_; }
    const MmuParams& params() const { return params_; }

    /**
     * Attach a trace sink: every translation records a Tlb event naming
     * the path taken (l1_hit / l2_hit / walk / fault). Call after the
     * MMU is adopted into the object tree so the component path is
     * fully qualified.
     */
    void
    setTraceSink(trace::TraceSink* sink)
    {
        trace_ = sink;
        if (sink != nullptr) {
            traceComp_ = sink->internComponent(fullPath());
            traceL1Hit_ = sink->internName("l1_hit");
            traceL2Hit_ = sink->internName("l2_hit");
            traceWalk_ = sink->internName("walk");
            traceFault_ = sink->internName("fault");
        }
    }

  private:
    void
    traceLookup(const Translation& t, Cycles now)
    {
        if (!trace::active(trace_))
            return;
        const std::uint32_t name = !t.valid ? traceFault_
                                   : t.l1Hit ? traceL1Hit_
                                   : t.l2Hit ? traceL2Hit_
                                             : traceWalk_;
        trace_->record(trace::Category::Tlb, traceComp_, name,
                       trace::kNoQuery, now, t.latency);
    }

    const VirtualMemory& vm_;
    MmuParams params_;
    Tlb l1_;
    Tlb l2_;
    trace::TraceSink* trace_ = nullptr;
    std::uint16_t traceComp_ = 0;
    std::uint32_t traceL1Hit_ = 0;
    std::uint32_t traceL2Hit_ = 0;
    std::uint32_t traceWalk_ = 0;
    std::uint32_t traceFault_ = 0;
};

} // namespace qei

#endif // QEI_VM_TLB_HH
