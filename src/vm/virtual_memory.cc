#include "virtual_memory.hh"

#include <algorithm>
#include <numeric>

namespace qei {

FrameAllocator::FrameAllocator(std::uint64_t total_frames, Mode mode,
                               std::uint64_t seed)
    : totalFrames_(total_frames), mode_(mode)
{
    if (mode_ == Mode::Fragmented) {
        // Pre-shuffle a window of frames; extend lazily in blocks so a
        // 64 GB memory does not need a 16M-entry shuffle up front.
        (void)seed;
        rngSeed_ = seed;
    }
}

Addr
FrameAllocator::allocate()
{
    simAssert(allocatedCount_ < totalFrames_,
              "out of physical frames ({} used)", allocatedCount_);
    ++allocatedCount_;
    if (mode_ == Mode::Contiguous)
        return nextSequential_++;

    if (shuffledNext_ >= shuffled_.size()) {
        // Refill: shuffle the next block of frame numbers.
        constexpr std::uint64_t kBlock = 1 << 16;
        const std::uint64_t base = nextSequential_;
        const std::uint64_t count =
            std::min<std::uint64_t>(kBlock, totalFrames_ - base);
        simAssert(count > 0, "frame allocator refill underflow");
        shuffled_.resize(count);
        std::iota(shuffled_.begin(), shuffled_.end(), base);
        Rng rng(rngSeed_ + base);
        for (std::size_t i = count; i > 1; --i)
            std::swap(shuffled_[i - 1], shuffled_[rng.below(i)]);
        shuffledNext_ = 0;
        nextSequential_ = base + count;
    }
    return shuffled_[shuffledNext_++];
}

VirtualMemory::VirtualMemory(SimMemory& memory, FrameAllocator::Mode mode,
                             std::uint64_t seed)
    : SimObject("vm"), memory_(memory),
      frames_(memory.sizeBytes() / kPageBytes, mode, seed)
{
}

Addr
VirtualMemory::alloc(std::uint64_t bytes, std::uint64_t align)
{
    simAssert(bytes > 0, "zero-byte allocation");
    simAssert(isPowerOfTwo(align), "alignment {} not a power of two",
              align);
    brk_ = (brk_ + align - 1) & ~(align - 1);
    const Addr base = brk_;
    brk_ += bytes;
    ensureMapped(base, bytes);
    return base;
}

void
VirtualMemory::ensureMapped(Addr vaddr, std::uint64_t bytes)
{
    const Addr first = pageNumber(vaddr);
    const Addr last = pageNumber(vaddr + bytes - 1);
    for (Addr vpn = first; vpn <= last; ++vpn) {
        if (!pageTable_.lookup(vpn))
            pageTable_.map(vpn, frames_.allocate());
    }
}

Addr
VirtualMemory::translate(Addr vaddr) const
{
    auto paddr = tryTranslate(vaddr);
    simAssert(paddr.has_value(), "unmapped virtual address {:#x}", vaddr);
    return *paddr;
}

std::optional<Addr>
VirtualMemory::tryTranslate(Addr vaddr) const
{
    auto pfn = pageTable_.lookup(pageNumber(vaddr));
    if (!pfn)
        return std::nullopt;
    return *pfn * kPageBytes + pageOffset(vaddr);
}

void
VirtualMemory::readBytes(Addr vaddr, void* out, std::size_t len) const
{
    auto* dst = static_cast<std::uint8_t*>(out);
    while (len > 0) {
        const std::uint32_t off = pageOffset(vaddr);
        const std::size_t chunk =
            std::min<std::size_t>(len, kPageBytes - off);
        memory_.read(translate(vaddr), dst, chunk);
        dst += chunk;
        vaddr += chunk;
        len -= chunk;
    }
}

void
VirtualMemory::writeBytes(Addr vaddr, const void* src, std::size_t len)
{
    const auto* from = static_cast<const std::uint8_t*>(src);
    while (len > 0) {
        const std::uint32_t off = pageOffset(vaddr);
        const std::size_t chunk =
            std::min<std::size_t>(len, kPageBytes - off);
        memory_.write(translate(vaddr), from, chunk);
        from += chunk;
        vaddr += chunk;
        len -= chunk;
    }
}

} // namespace qei
