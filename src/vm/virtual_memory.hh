/**
 * @file
 * Simulated per-process virtual memory: page table, fragmenting frame
 * allocator, and a bump allocator for laying data structures out in the
 * simulated address space.
 *
 * Fragmentation matters to QEI: the paper argues queried data
 * structures seldom sit in contiguous physical memory (so huge-page
 * tricks fail and accelerators need real translation). The frame
 * allocator therefore hands out physical frames in a pseudo-random
 * order by default.
 */

#ifndef QEI_VM_VIRTUAL_MEMORY_HH
#define QEI_VM_VIRTUAL_MEMORY_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/sim_object.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/sim_memory.hh"
#include "trace/trace.hh"

namespace qei {

/** Maps virtual page numbers to physical frame numbers. */
class PageTable
{
  public:
    /** Install a vpn→pfn mapping; remapping an existing vpn panics. */
    void
    map(Addr vpn, Addr pfn)
    {
        auto [it, inserted] = table_.emplace(vpn, pfn);
        simAssert(inserted, "vpn {:#x} already mapped", vpn);
        (void)it;
    }

    /** Look up the frame for @p vpn; nullopt when unmapped. */
    std::optional<Addr>
    lookup(Addr vpn) const
    {
        auto it = table_.find(vpn);
        if (it == table_.end())
            return std::nullopt;
        return it->second;
    }

    std::size_t size() const { return table_.size(); }

    /** All vpn -> pfn mappings (for whole-footprint cache warming). */
    const std::unordered_map<Addr, Addr>& entries() const
    {
        return table_;
    }

  private:
    std::unordered_map<Addr, Addr> table_;
};

/**
 * Physical frame allocator.
 *
 * In Fragmented mode (the default) frames are served from a shuffled
 * free list, so consecutive virtual pages land on scattered frames —
 * the memory layout of a long-running server. Contiguous mode exists
 * for tests and for modelling the huge-page assumption of prior work.
 */
class FrameAllocator
{
  public:
    enum class Mode { Fragmented, Contiguous };

    FrameAllocator(std::uint64_t total_frames, Mode mode,
                   std::uint64_t seed = 1);

    /** Allocate one frame; fatal() when physical memory is exhausted. */
    Addr allocate();

    std::uint64_t allocated() const { return allocatedCount_; }
    std::uint64_t totalFrames() const { return totalFrames_; }
    Mode mode() const { return mode_; }

  private:
    std::uint64_t totalFrames_;
    Mode mode_;
    std::uint64_t rngSeed_ = 1;
    std::uint64_t allocatedCount_ = 0;
    std::uint64_t nextSequential_ = 0;
    std::vector<Addr> shuffled_;
    std::size_t shuffledNext_ = 0;
};

/**
 * A process address space over a SimMemory.
 *
 * Provides a bump allocator (alloc) plus translated typed accessors.
 * Host-side code (data-structure builders, reference queries) uses
 * these accessors; the timing models translate separately via the MMU.
 */
class VirtualMemory : public SimObject
{
  public:
    VirtualMemory(SimMemory& memory, FrameAllocator::Mode mode =
                      FrameAllocator::Mode::Fragmented,
                  std::uint64_t seed = 1);

    void
    regStats(StatsRegistry& registry) override
    {
        const std::string base = fullPath() + ".";
        registry.addFormula(
            base + "pages_mapped",
            [this] { return static_cast<double>(pageTable_.size()); },
            "virtual pages with a frame");
        registry.addFormula(
            base + "bytes_allocated",
            [this] { return static_cast<double>(bytesAllocated()); },
            "heap bytes handed out");
        registry.addFormula(
            base + "frames_allocated",
            [this] { return static_cast<double>(frames_.allocated()); },
            "physical frames in use");
        registry.addCounter(base + "page_walks", pageWalks_,
                            "page-table walks charged by any MMU");
    }

    /**
     * Attach a trace sink: every notePageWalk() records a Vm span for
     * the walk of this address space's page table.
     */
    void
    setTraceSink(trace::TraceSink* sink)
    {
        trace_ = sink;
        if (sink != nullptr) {
            traceComp_ = sink->internComponent("vm");
            traceWalk_ = sink->internName("page_walk");
        }
    }

    /**
     * Account a page-table walk of this address space. Called from the
     * MMUs and from QEI's dedicated TLBs — the walker hardware differs,
     * the walked structure is this one. const because translation
     * consumers hold a const reference; only instrumentation mutates.
     */
    void
    notePageWalk(Cycles now, Cycles latency) const
    {
        pageWalks_.inc();
        if (trace::active(trace_)) {
            trace_->record(trace::Category::Vm, traceComp_, traceWalk_,
                           trace::kNoQuery, now, latency);
        }
    }

    /** Allocate @p bytes with @p align alignment; maps pages eagerly. */
    Addr alloc(std::uint64_t bytes, std::uint64_t align = 8);

    /** Allocate a fresh cacheline-aligned block. */
    Addr
    allocLines(std::uint64_t bytes)
    {
        return alloc(bytes, kCacheLineBytes);
    }

    /** Translate a virtual address; panics when unmapped. */
    Addr translate(Addr vaddr) const;

    /** Translate; nullopt when unmapped (for fault modelling). */
    std::optional<Addr> tryTranslate(Addr vaddr) const;

    /** Read through translation (may cross page boundaries). */
    void readBytes(Addr vaddr, void* out, std::size_t len) const;

    /** Write through translation (may cross page boundaries). */
    void writeBytes(Addr vaddr, const void* src, std::size_t len);

    template <typename T>
    T
    read(Addr vaddr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        readBytes(vaddr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr vaddr, const T& value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        writeBytes(vaddr, &value, sizeof(T));
    }

    const PageTable& pageTable() const { return pageTable_; }
    SimMemory& memory() { return memory_; }
    const SimMemory& memory() const { return memory_; }
    std::uint64_t bytesAllocated() const { return brk_ - kHeapBase; }

    /** Heap base: a non-zero base keeps kNullAddr unmapped. */
    static constexpr Addr kHeapBase = 0x10000000ULL;

  private:
    void ensureMapped(Addr vaddr, std::uint64_t bytes);

    SimMemory& memory_;
    PageTable pageTable_;
    FrameAllocator frames_;
    Addr brk_ = kHeapBase;
    mutable Counter pageWalks_;
    trace::TraceSink* trace_ = nullptr;
    std::uint16_t traceComp_ = 0;
    std::uint32_t traceWalk_ = 0;
};

} // namespace qei

#endif // QEI_VM_VIRTUAL_MEMORY_HH
