#include "dpdk_fib.hh"

namespace qei {

void
DpdkFibWorkload::build(World& world)
{
    table_ = std::make_unique<SimCuckooHash>(world.vm, buckets_, 16);
    installed_.reserve(flows_);
    for (std::size_t i = 0; i < flows_; ++i) {
        Key flow = randomKey(world.rng, 16);
        if (table_->insert(flow, 0x100 + i))
            installed_.push_back(std::move(flow));
    }
    simAssert(installed_.size() > flows_ / 2,
              "cuckoo build failed: only {} of {} flows installed",
              installed_.size(), flows_);
}

Prepared
DpdkFibWorkload::prepare(World& world, std::size_t queries)
{
    simAssert(table_ != nullptr, "build() must run before prepare()");
    Prepared out;
    // L3 forwarding between lookups: header parse, TTL update, tx
    // queue bookkeeping — a tight kernel-bypass loop.
    out.profile.nonQueryInstrPerOp = 14;
    out.profile.nonQueryBranchesPerOp = 4;
    out.profile.frontendStallPerInstr = 0.01;
    out.profile.roiFraction = 0.44; // Fig. 1

    for (std::size_t q = 0; q < queries; ++q) {
        // 90% of packets belong to installed flows.
        const Key key =
            world.rng.chance(0.9)
                ? installed_[world.rng.below(installed_.size())]
                : randomKey(world.rng, 16);
        QueryTrace trace = table_->query(key);
        // Address of the bucket probes is produced by a chained CRC32
        // over the 16 B key (~6 cycles of serial latency per probe).
        for (auto& t : trace.touches) {
            if (!t.dependsOnPrev)
                t.computeLatency = 16;
        }
        QueryJob job;
        job.headerAddr = table_->headerAddr();
        job.keyAddr = table_->stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        out.jobs.push_back(job);
        out.traces.push_back(std::move(trace));
    }
    return out;
}

} // namespace qei
