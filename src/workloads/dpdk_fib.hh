/**
 * @file
 * DPDK L3 Forwarding Information Base workload (Sec. VI-B): an
 * rte_hash-style cuckoo table keyed by 16 B TCP/IP header tuples.
 * 64 K installed flows (~3.5 MB of table + key store: larger than the
 * 1 MB L2, LLC resident); 90 % of lookups hit.
 */

#ifndef QEI_WORKLOADS_DPDK_FIB_HH
#define QEI_WORKLOADS_DPDK_FIB_HH

#include "ds/cuckoo_hash.hh"
#include "workloads/workload.hh"

namespace qei {

/** The DPDK FIB lookup workload. */
class DpdkFibWorkload final : public Workload
{
  public:
    explicit DpdkFibWorkload(std::size_t flows = 64 * 1024,
                             std::size_t buckets = 16 * 1024)
        : flows_(flows), buckets_(buckets)
    {
    }

    std::string name() const override { return "dpdk"; }

    std::string
    description() const override
    {
        return "DPDK L3-FIB: cuckoo hash, 16B keys, 64K flows";
    }

    void build(World& world) override;
    Prepared prepare(World& world, std::size_t queries) override;
    std::size_t defaultQueries() const override { return 2500; }

    SimCuckooHash& table() { return *table_; }

  private:
    std::size_t flows_;
    std::size_t buckets_;
    std::unique_ptr<SimCuckooHash> table_;
    std::vector<Key> installed_;
};

} // namespace qei

#endif // QEI_WORKLOADS_DPDK_FIB_HH
