#include "flann_lsh.hh"

namespace qei {

void
FlannLshWorkload::build(World& world)
{
    std::vector<std::pair<Key, std::uint64_t>> items;
    items.reserve(items_);
    datasetKeys_.reserve(items_);
    for (std::size_t i = 0; i < items_; ++i) {
        Key key = randomKey(world.rng, 20);
        items.emplace_back(key, 0xF000000 + i);
        datasetKeys_.push_back(std::move(key));
    }
    lsh_ = std::make_unique<SimLsh>(world.vm, tables_, items,
                                    world.rng);
}

Prepared
FlannLshWorkload::prepare(World& world, std::size_t queries)
{
    simAssert(lsh_ != nullptr, "build() must run before prepare()");
    Prepared out;
    // Between table probes FLANN manages the candidate heap and
    // projection state.
    out.profile.nonQueryInstrPerOp = 30;
    out.profile.nonQueryBranchesPerOp = 6;
    out.profile.frontendStallPerInstr = 0.02;
    out.profile.roiFraction = 0.30;

    for (std::size_t q = 0; q < queries; ++q) {
        // 70% re-lookups of dataset keys (exact LSH hits), 30% novel
        // probes that miss.
        const Key key =
            world.rng.chance(0.7)
                ? datasetKeys_[world.rng.below(datasetKeys_.size())]
                : randomKey(world.rng, 20);
        for (int t = 0; t < tables_; ++t) {
            const Key projected = lsh_->project(key, t);
            QueryTrace trace = lsh_->table(t).query(projected);
            for (auto& touch : trace.touches) {
                if (!touch.dependsOnPrev)
                    touch.computeLatency = 14; // FNV chain over 20B
            }
            QueryJob job;
            job.headerAddr = lsh_->table(t).headerAddr();
            job.keyAddr = lsh_->table(t).stageKey(projected);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = trace.found;
            job.expectValue = trace.resultValue;
            out.jobs.push_back(job);
            out.traces.push_back(std::move(trace));
        }
    }
    return out;
}

} // namespace qei
