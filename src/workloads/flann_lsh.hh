/**
 * @file
 * FLANN similarity-search workload (Sec. VI-B): Locality Sensitive
 * Hashing over a binary-key dataset — 12 hash tables, 20 B keys (the
 * paper's default LSH parameters), dataset scaled to 30 K items so the
 * index exceeds the private caches. One logical similarity query
 * probes all 12 tables; each probe is an independent QEI job.
 */

#ifndef QEI_WORKLOADS_FLANN_LSH_HH
#define QEI_WORKLOADS_FLANN_LSH_HH

#include "ds/lsh.hh"
#include "workloads/workload.hh"

namespace qei {

/** The FLANN LSH similarity-search workload. */
class FlannLshWorkload final : public Workload
{
  public:
    explicit FlannLshWorkload(int tables = 12,
                              std::size_t items = 30 * 1000)
        : tables_(tables), items_(items)
    {
    }

    std::string name() const override { return "flann"; }

    std::string
    description() const override
    {
        return "FLANN LSH: 12 hash tables, 20B keys, 30K items";
    }

    void build(World& world) override;
    Prepared prepare(World& world, std::size_t queries) override;
    /** Default: 180 logical queries = 2160 table probes. */
    std::size_t defaultQueries() const override { return 180; }

    SimLsh& index() { return *lsh_; }
    int tableCount() const { return tables_; }

  private:
    int tables_;
    std::size_t items_;
    std::unique_ptr<SimLsh> lsh_;
    std::vector<Key> datasetKeys_;
};

} // namespace qei

#endif // QEI_WORKLOADS_FLANN_LSH_HH
