#include "jvm_gc.hh"

namespace qei {

void
JvmGcWorkload::build(World& world)
{
    std::vector<std::pair<Key, std::uint64_t>> items;
    items.reserve(objects_);
    objectIds_.reserve(objects_);
    for (std::size_t i = 0; i < objects_; ++i) {
        Key id = randomKey(world.rng, 8);
        items.emplace_back(id, 0xA000 + i);
        objectIds_.push_back(std::move(id));
    }
    // Random insertion order keeps the unbalanced BST near its
    // expected O(log n) height, like an address-ordered object tree.
    tree_ = std::make_unique<SimBst>(world.vm, items);
}

Prepared
JvmGcWorkload::prepare(World& world, std::size_t queries)
{
    simAssert(tree_ != nullptr, "build() must run before prepare()");
    Prepared out;
    // The GC mark loop is query-dense: pop a reference, look it up,
    // push children. Very little independent work per query.
    out.profile.nonQueryInstrPerOp = 20;
    out.profile.nonQueryBranchesPerOp = 2;
    out.profile.frontendStallPerInstr = 0.015;
    out.profile.roiFraction = 0.39;

    for (std::size_t q = 0; q < queries; ++q) {
        const Key& id = objectIds_[world.rng.below(objectIds_.size())];
        QueryTrace trace = tree_->query(id);
        QueryJob job;
        job.headerAddr = tree_->headerAddr();
        job.keyAddr = tree_->stageKey(id);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        out.jobs.push_back(job);
        out.traces.push_back(std::move(trace));
    }
    return out;
}

} // namespace qei
