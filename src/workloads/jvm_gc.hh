/**
 * @file
 * JVM garbage-collection workload (Sec. VI-B): the serial
 * mark-and-sweep collector's live-object lookups against an object
 * tree. The paper extracts OpenJDK's GC and feeds it an object tree
 * dumped from Derby/SPECjvm2008; we synthesise an equivalent tree —
 * 8 B object-id keys, randomised insertion order, sized so the
 * average query walks ~25-40 nodes (the paper measures 39.9 memory
 * accesses per query).
 */

#ifndef QEI_WORKLOADS_JVM_GC_HH
#define QEI_WORKLOADS_JVM_GC_HH

#include "ds/bst.hh"
#include "workloads/workload.hh"

namespace qei {

/** The JVM GC object-tree workload. */
class JvmGcWorkload final : public Workload
{
  public:
    explicit JvmGcWorkload(std::size_t objects = 150 * 1000)
        : objects_(objects)
    {
    }

    std::string name() const override { return "jvm"; }

    std::string
    description() const override
    {
        return "JVM GC: object tree (BST), 8B object ids, 150K live "
               "objects";
    }

    void build(World& world) override;
    Prepared prepare(World& world, std::size_t queries) override;
    std::size_t defaultQueries() const override { return 1500; }

    SimBst& tree() { return *tree_; }

  private:
    std::size_t objects_;
    std::unique_ptr<SimBst> tree_;
    std::vector<Key> objectIds_;
};

} // namespace qei

#endif // QEI_WORKLOADS_JVM_GC_HH
