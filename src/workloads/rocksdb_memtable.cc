#include "rocksdb_memtable.hh"

namespace qei {

void
RocksDbMemtableWorkload::build(World& world)
{
    std::vector<std::pair<Key, std::uint64_t>> items;
    items.reserve(items_);
    keys_.reserve(items_);
    for (std::size_t i = 0; i < items_; ++i) {
        Key key = randomKey(world.rng, 100);
        // 900 B value blob in the arena; the skip list stores the
        // pointer, which is what a query returns.
        const Addr blob = world.vm.alloc(900, 8);
        world.vm.write<std::uint64_t>(blob, 0xB10B0000 + i);
        items.emplace_back(key, blob);
        keys_.push_back(std::move(key));
    }
    list_ = std::make_unique<SimSkipList>(world.vm, items,
                                          world.rng.next());
}

Prepared
RocksDbMemtableWorkload::prepare(World& world, std::size_t queries)
{
    simAssert(list_ != nullptr, "build() must run before prepare()");
    Prepared out;
    // RocksDB's Get() seek loop is comparatively fat (Sec. VII-A):
    // key pre-processing, comparator dispatch, iterator bookkeeping,
    // and the result memcpy. This is what fills the ROB quickly and
    // caps QEI's in-flight parallelism on this workload.
    out.profile.nonQueryInstrPerOp = 40;
    out.profile.nonQueryBranchesPerOp = 8;
    out.profile.nonQueryMispredictsPerOp = 1;
    out.profile.frontendStallPerInstr = 0.05; // 25.9% frontend bound
    out.profile.roiFraction = 0.32;

    for (std::size_t q = 0; q < queries; ++q) {
        const Key& key = keys_[world.rng.below(keys_.size())];
        QueryTrace trace = list_->query(key);
        QueryJob job;
        job.headerAddr = list_->headerAddr();
        job.keyAddr = list_->stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        out.jobs.push_back(job);
        out.traces.push_back(std::move(trace));
    }
    return out;
}

} // namespace qei
