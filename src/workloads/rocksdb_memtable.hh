/**
 * @file
 * RocksDB memtable workload (Sec. VI-B): the in-memory skip list
 * behind RocksDB's write path, db_bench-style — 10 K items, 100 B
 * keys, 900 B values (values live behind a pointer, as the memtable
 * stores references into its arena).
 */

#ifndef QEI_WORKLOADS_ROCKSDB_MEMTABLE_HH
#define QEI_WORKLOADS_ROCKSDB_MEMTABLE_HH

#include "ds/skip_list.hh"
#include "workloads/workload.hh"

namespace qei {

/** The RocksDB memtable (skip list) workload. */
class RocksDbMemtableWorkload final : public Workload
{
  public:
    explicit RocksDbMemtableWorkload(std::size_t items = 10 * 1000)
        : items_(items)
    {
    }

    std::string name() const override { return "rocksdb"; }

    std::string
    description() const override
    {
        return "RocksDB memtable: skip list, 100B keys / 900B values, "
               "10K items";
    }

    void build(World& world) override;
    Prepared prepare(World& world, std::size_t queries) override;
    std::size_t defaultQueries() const override { return 900; }

    SimSkipList& memtable() { return *list_; }

  private:
    std::size_t items_;
    std::unique_ptr<SimSkipList> list_;
    std::vector<Key> keys_;
};

} // namespace qei

#endif // QEI_WORKLOADS_ROCKSDB_MEMTABLE_HH
