#include "snort_ac.hh"

namespace qei {

void
SnortAcWorkload::build(World& world)
{
    dictionary_.reserve(keywords_);
    for (std::size_t i = 0; i < keywords_; ++i) {
        const std::size_t len = 4 + world.rng.below(9); // 4..12
        std::string word;
        word.reserve(len);
        for (std::size_t c = 0; c < len; ++c) {
            word.push_back(
                static_cast<char>('a' + world.rng.below(26)));
        }
        dictionary_.push_back(std::move(word));
    }
    trie_ = std::make_unique<SimTrie>(world.vm, dictionary_);
    headerAddr_ = trie_->makeHeader(
        static_cast<std::uint32_t>(payloadBytes_));
}

Prepared
SnortAcWorkload::prepare(World& world, std::size_t queries)
{
    simAssert(trie_ != nullptr, "build() must run before prepare()");
    Prepared out;
    // One job scans a whole payload; the surrounding work is packet
    // reassembly and rule-group selection.
    out.profile.nonQueryInstrPerOp = 30;
    out.profile.nonQueryBranchesPerOp = 5;
    out.profile.frontendStallPerInstr = 0.02;
    out.profile.roiFraction = 0.40;
    out.workPerJob = static_cast<double>(payloadBytes_);

    for (std::size_t q = 0; q < queries; ++q) {
        // Random payload with a handful of dictionary words spliced
        // in, so scans exercise both the fail paths and real matches.
        std::vector<std::uint8_t> payload(payloadBytes_);
        for (auto& b : payload)
            b = static_cast<std::uint8_t>('a' + world.rng.below(26));
        for (int splice = 0; splice < 8; ++splice) {
            const std::string& word =
                dictionary_[world.rng.below(dictionary_.size())];
            const std::size_t pos =
                world.rng.below(payloadBytes_ - word.size());
            std::copy(word.begin(), word.end(),
                      payload.begin() + static_cast<long>(pos));
        }

        QueryTrace trace = trie_->match(payload);
        QueryJob job;
        job.headerAddr = headerAddr_;
        job.keyAddr = trie_->stageInput(payload);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        out.jobs.push_back(job);
        out.traces.push_back(std::move(trace));
    }
    return out;
}

} // namespace qei
