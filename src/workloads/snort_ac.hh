/**
 * @file
 * Snort intrusion-prevention workload (Sec. VI-B): Aho-Corasick
 * literal matching of network payloads against a keyword dictionary.
 * The paper uses ~40 K keywords and scans 1 KB strings; one "query"
 * here is one full 1 KB scan (≈1 K automaton transitions), so the
 * per-job work is three orders of magnitude heavier than a hash probe.
 */

#ifndef QEI_WORKLOADS_SNORT_AC_HH
#define QEI_WORKLOADS_SNORT_AC_HH

#include "ds/trie.hh"
#include "workloads/workload.hh"

namespace qei {

/** The Snort Aho-Corasick literal-matching workload. */
class SnortAcWorkload final : public Workload
{
  public:
    explicit SnortAcWorkload(std::size_t keywords = 40 * 1000,
                             std::size_t payload_bytes = 1024)
        : keywords_(keywords), payloadBytes_(payload_bytes)
    {
    }

    std::string name() const override { return "snort"; }

    std::string
    description() const override
    {
        return "Snort IPS: Aho-Corasick trie, 40K keywords, 1KB "
               "payload scans";
    }

    void build(World& world) override;
    Prepared prepare(World& world, std::size_t queries) override;
    std::size_t defaultQueries() const override { return 24; }

    SimTrie& automaton() { return *trie_; }

  private:
    std::size_t keywords_;
    std::size_t payloadBytes_;
    std::unique_ptr<SimTrie> trie_;
    std::vector<std::string> dictionary_;
    Addr headerAddr_ = kNullAddr;
};

} // namespace qei

#endif // QEI_WORKLOADS_SNORT_AC_HH
