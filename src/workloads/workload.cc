#include "workload.hh"

#include <algorithm>

#include "workloads/dpdk_fib.hh"
#include "workloads/flann_lsh.hh"
#include "workloads/jvm_gc.hh"
#include "workloads/rocksdb_memtable.hh"
#include "workloads/snort_ac.hh"

namespace qei {

namespace {

/** Mapped virtual pages, sorted for deterministic TLB pre-warming. */
std::vector<Addr>
sortedVpns(const World& world)
{
    std::vector<Addr> vpns;
    vpns.reserve(world.vm.pageTable().entries().size());
    for (const auto& [vpn, pfn] : world.vm.pageTable().entries()) {
        (void)pfn;
        vpns.push_back(vpn);
    }
    std::sort(vpns.begin(), vpns.end());
    return vpns;
}

} // namespace

CoreRunResult
runBaseline(World& world, const Prepared& prepared, int core)
{
    world.resetTiming();
    world.warmLlc();
    Mmu mmu(world.vm, world.chip.mmu);
    mmu.prefillL2(sortedVpns(world));
    CoreModel model(core, world.chip.core, world.hierarchy, mmu);
    mmu.setTraceSink(&world.traceSink);
    model.setTraceSink(&world.traceSink);
    return model.runQueries(prepared.traces, prepared.profile);
}

QeiRunStats
runQei(World& world, const Prepared& prepared,
       const DriverConfig& config)
{
    world.resetTiming();
    world.warmLlc();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware, config.topology,
                     &world.traceSink);
    system.warmTlbs(sortedVpns(world));
    // The baseline traces double as the software view of each job:
    // with a fault mix configured, faulted queries re-execute on the
    // simulated core instead of surfacing as exceptions (Sec. IV-D).
    system.setSoftwareFallback(&prepared.traces, prepared.profile);
    Driver driver(system, config);
    QeiRunStats stats = driver.run(prepared.jobs, prepared.profile);
    if (config.statsJsonOut != nullptr)
        *config.statsJsonOut = system.dumpStatsJson();
    return stats;
}

double
speedupOf(const CoreRunResult& baseline, const QeiRunStats& qei)
{
    return qei.cycles
               ? static_cast<double>(baseline.cycles) /
                     static_cast<double>(qei.cycles)
               : 0.0;
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const auto& factory : makeWorkloadFactories())
        all.push_back(factory());
    return all;
}

std::vector<WorkloadFactory>
makeWorkloadFactories()
{
    return {
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<DpdkFibWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<JvmGcWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<RocksDbMemtableWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<SnortAcWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<FlannLshWorkload>();
        },
    };
}

} // namespace qei
