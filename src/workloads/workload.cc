#include "workload.hh"

#include <algorithm>

#include "workloads/dpdk_fib.hh"
#include "workloads/flann_lsh.hh"
#include "workloads/jvm_gc.hh"
#include "workloads/rocksdb_memtable.hh"
#include "workloads/snort_ac.hh"

namespace qei {

namespace {

/** Mapped virtual pages, sorted for deterministic TLB pre-warming. */
std::vector<Addr>
sortedVpns(const World& world)
{
    std::vector<Addr> vpns;
    vpns.reserve(world.vm.pageTable().entries().size());
    for (const auto& [vpn, pfn] : world.vm.pageTable().entries()) {
        (void)pfn;
        vpns.push_back(vpn);
    }
    std::sort(vpns.begin(), vpns.end());
    return vpns;
}

} // namespace

CoreRunResult
runBaseline(World& world, const Prepared& prepared, int core)
{
    world.resetTiming();
    world.warmLlc();
    Mmu mmu(world.vm, world.chip.mmu);
    mmu.prefillL2(sortedVpns(world));
    CoreModel model(core, world.chip.core, world.hierarchy, mmu);
    mmu.setTraceSink(&world.traceSink);
    model.setTraceSink(&world.traceSink);
    return model.runQueries(prepared.traces, prepared.profile);
}

namespace {

/**
 * Build, adopt, and wire a telemetry sampler for @p system: the
 * standard probe set (per-accelerator completion rate), the live
 * gauges a registry can't express (summed QST occupancy, event-queue
 * depth, NoC link utilisation), the backoff-rate series, and the
 * sojourn tail monitor recordCompletion feeds. Series names use the
 * sampler's dotted path ("system.metrics.*") so artifact consumers
 * address them like any other stat.
 */
std::unique_ptr<metrics::MetricsSampler>
makeSampler(World& world, QeiSystem& system,
            const metrics::SamplerConfig& config)
{
    auto sampler = std::make_unique<metrics::MetricsSampler>(config);
    system.adopt(*sampler);
    sampler->setTraceSink(&world.traceSink);
    sampler->observeRegistry(system.statsRegistry());
    for (int i = 0; i < system.acceleratorCount(); ++i) {
        sampler->probe(fmt("system.accel{}.queries", i),
                       metrics::SeriesKind::Rate);
    }
    QeiSystem* sys = &system;
    sampler->addGauge("system.metrics.qst_occupancy", [sys] {
        double occupied = 0.0;
        for (int i = 0; i < sys->acceleratorCount(); ++i) {
            occupied += static_cast<double>(
                sys->accelerator(i).qst().occupied());
        }
        return occupied;
    });
    EventQueue* events = &world.events;
    sampler->addGauge("system.metrics.event_queue_depth", [events] {
        return static_cast<double>(events->pendingWork());
    });
    Mesh* mesh = &world.hierarchy.mesh();
    sampler->addGauge("system.metrics.noc_peak_link_util", [mesh] {
        return mesh->peakLinkUtilisation();
    });
    sampler->addGauge("system.metrics.noc_mean_link_util", [mesh] {
        return mesh->meanLinkUtilisation();
    });
    sampler->addRate("system.metrics.qst_backoffs", [sys] {
        return static_cast<double>(sys->liveBackoffs());
    });
    sampler->addTailMonitor("system.metrics.sojourn",
                            config.sloSojournP99);
    system.setMetricsSampler(sampler.get());
    return sampler;
}

} // namespace

QeiRunStats
runQei(World& world, const Prepared& prepared,
       const DriverConfig& config)
{
    world.resetTiming();
    world.warmLlc();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware, config.topology,
                     &world.traceSink);
    system.warmTlbs(sortedVpns(world));
    // The baseline traces double as the software view of each job:
    // with a fault mix configured, faulted queries re-execute on the
    // simulated core instead of surfacing as exceptions (Sec. IV-D).
    system.setSoftwareFallback(&prepared.traces, prepared.profile);
    // Offload planner: per-run (matrix cells share no mutable state),
    // attached only when a mode is in force — explicitly via
    // DriverConfig.withPlanner or process-wide via --planner/
    // QEI_PLANNER. Attaching adds the core-vs-accelerate decision
    // layer on top of whatever deployment this cell chose; routing
    // stays the topology's job.
    std::unique_ptr<OffloadPlanner> planner;
    PlannerConfig plannerCfg = config.planner;
    plannerCfg.mode = plannerCfg.resolvedMode();
    if (plannerCfg.mode != PlannerMode::Static) {
        planner = std::make_unique<OffloadPlanner>(plannerCfg);
        planner->bindTopology(config.topology);
        system.adopt(*planner);
        system.setPlanner(planner.get());
    }
    // Admission control: constructed only for a non-None policy, so
    // historical runs carry no "system.admission" stats node. The
    // Driver's serving loop consults it per arrival.
    std::unique_ptr<AdmissionController> admission;
    if (config.admission.active()) {
        admission =
            std::make_unique<AdmissionController>(config.admission);
        system.adopt(*admission);
        system.setAdmission(admission.get());
    }
    // Telemetry rides daemon events, so arming it changes no query
    // timing; declared after the system so it dies first (its probes
    // borrow registry pointers into the component tree).
    std::unique_ptr<metrics::MetricsSampler> sampler;
    if (metrics::kCompiledIn && metrics::runtimeConfig().enabled) {
        sampler = makeSampler(world, system,
                              metrics::runtimeConfig().sampler);
    }
    Driver driver(system, config);
    QeiRunStats stats = driver.run(prepared.jobs, prepared.profile);
    if (sampler != nullptr) {
        stats.metrics = std::make_shared<metrics::RunSeries>(
            sampler->drain());
        metrics::Recorder::global().add(
            config.cellLabel.empty() ? config.topology.name()
                                     : config.cellLabel,
            *stats.metrics);
        system.setMetricsSampler(nullptr);
    }
    if (config.statsJsonOut != nullptr)
        *config.statsJsonOut = system.dumpStatsJson();
    return stats;
}

double
speedupOf(const CoreRunResult& baseline, const QeiRunStats& qei)
{
    return qei.cycles
               ? static_cast<double>(baseline.cycles) /
                     static_cast<double>(qei.cycles)
               : 0.0;
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const auto& factory : makeWorkloadFactories())
        all.push_back(factory());
    return all;
}

std::vector<WorkloadFactory>
makeWorkloadFactories()
{
    return {
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<DpdkFibWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<JvmGcWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<RocksDbMemtableWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<SnortAcWorkload>();
        },
        []() -> std::unique_ptr<Workload> {
            return std::make_unique<FlannLshWorkload>();
        },
    };
}

} // namespace qei
