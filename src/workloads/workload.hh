/**
 * @file
 * Workload framework: a World bundles the simulated machine state one
 * experiment runs against; a Workload builds its data structures in
 * that world and prepares matched query streams for the software
 * baseline and for QEI (same keys, same order, same ground truth).
 */

#ifndef QEI_WORKLOADS_WORKLOAD_HH
#define QEI_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/chip_config.hh"
#include "core/core_model.hh"
#include "core/trace.hh"
#include "mem/sim_memory.hh"
#include "qei/driver.hh"
#include "qei/firmware.hh"
#include "qei/system.hh"
#include "sim/event_queue.hh"
#include "trace/trace.hh"
#include "vm/virtual_memory.hh"

namespace qei {

/**
 * Everything one experiment runs against.
 *
 * Thread-safety rule — *no shared mutable state per cell*: a World
 * owns every piece of mutable simulation state an experiment touches
 * (SimMemory, VirtualMemory, MemoryHierarchy, EventQueue, its own
 * FirmwareStore copy from FirmwareStore::factory(), and the Rng), and
 * StatsRegistry instances are built per QeiSystem, so two experiment
 * cells running on different Worlds never race. Parallel runners
 * (bench_util::runWorkloadMatrix, qei::parallelMap) rely on this:
 * give each task its own World + Workload instance and touch nothing
 * static. The only process-wide state simulation code may share is
 * the logging layer, which is thread-safe (common/logging.hh).
 */
struct World
{
    explicit World(std::uint64_t seed = 1,
                   const ChipConfig& config = defaultChip())
        : chip(config), memory(8ULL << 30),
          vm(memory, FrameAllocator::Mode::Fragmented, seed),
          hierarchy(config.memory),
          firmware(FirmwareStore::factory()), rng(seed)
    {
        // Wire the shared components to this world's sink once; the
        // sink stays disabled (and the instrumentation free) until an
        // experiment calls traceSink.enable(). Worlds never move, so
        // the pointers stay valid for the world's lifetime.
        events.setTraceSink(&traceSink);
        hierarchy.setTraceSink(&traceSink);
        vm.setTraceSink(&traceSink);
    }

    /**
     * Reset all timing state (caches, NoC traffic, DRAM queues, event
     * queue) without touching the built data structures, so baseline
     * and every scheme start from the same machine state.
     */
    void
    resetTiming()
    {
        hierarchy.flushAllCaches();
        hierarchy.resetCacheStats();
        hierarchy.mesh().resetTraffic();
        hierarchy.dram().reset();
        events.reset();
    }

    /**
     * Load the entire mapped footprint into the LLC: the steady state
     * the paper evaluates (structures larger than the private caches
     * but LLC-resident, queries arriving back to back). Runs after
     * resetTiming() so baseline and every scheme see the same warm
     * LLC and cold private caches.
     */
    void
    warmLlc()
    {
        for (const auto& [vpn, pfn] : vm.pageTable().entries()) {
            (void)vpn;
            const Addr base = pfn * kPageBytes;
            for (std::uint32_t off = 0; off < kPageBytes;
                 off += kCacheLineBytes) {
                hierarchy.preloadLlc(base + off);
            }
        }
    }

    ChipConfig chip;
    SimMemory memory;
    VirtualMemory vm;
    MemoryHierarchy hierarchy;
    EventQueue events;
    FirmwareStore firmware;
    Rng rng;
    /**
     * Per-world timeline event sink (tentpole of the observability
     * work): private to this world, so parallel matrix cells never
     * share trace state. Declared last so every component it observes
     * outlives it during destruction.
     */
    trace::TraceSink traceSink;
};

/** Matched baseline/QEI query streams for one workload. */
struct Prepared
{
    std::vector<QueryTrace> traces; ///< software baseline, in order
    std::vector<QueryJob> jobs;     ///< the same queries for QEI
    RoiProfile profile;
    /** Queries per job (Snort scans a whole buffer per job). */
    double workPerJob = 1.0;
};

/** Interface every paper workload implements. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier ("dpdk", "jvm", ...). */
    virtual std::string name() const = 0;

    /** Human-readable description for reports. */
    virtual std::string description() const = 0;

    /** Build the data structures in @p world (expensive, run once). */
    virtual void build(World& world) = 0;

    /** Generate @p queries matched query streams. */
    virtual Prepared prepare(World& world, std::size_t queries) = 0;

    /** Default number of queries per experiment run. */
    virtual std::size_t defaultQueries() const { return 2000; }
};

/** Run the software baseline for @p prepared on core @p core. */
CoreRunResult runBaseline(World& world, const Prepared& prepared,
                          int core = 0);

/**
 * Run @p prepared through QEI under @p config: build a QeiSystem for
 * the config's topology on this world, warm its TLBs, wire the
 * software fallback, and drive the prepared jobs through the Driver
 * (closed loop unless the config carries an open-loop traffic
 * source). When config.statsJsonOut is non-null it receives the full
 * component-tree stats dump captured before the system is torn down.
 */
QeiRunStats runQei(World& world, const Prepared& prepared,
                   const DriverConfig& config);

/** Baseline-cycles / QEI-cycles. */
double speedupOf(const CoreRunResult& baseline, const QeiRunStats& qei);

/** All five paper workloads, in the paper's presentation order. */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/** Produces a fresh, independent instance of one workload. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/**
 * One factory per paper workload, in the paper's presentation order.
 * Parallel experiment runners use these so every (workload, scheme)
 * cell owns a private Workload instance — Workload subclasses keep
 * per-World build state, so instances must not be shared across
 * concurrent cells.
 */
std::vector<WorkloadFactory> makeWorkloadFactories();

} // namespace qei

#endif // QEI_WORKLOADS_WORKLOAD_HH
