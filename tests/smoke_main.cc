// Quick end-to-end smoke: every data structure queried through QEI
// must match its software reference, on every integration scheme.
// (Kept as a plain binary for fast iteration; the gtest suites cover
// the same ground and more.)

#include <cstdio>

#include "ds/bst.hh"
#include "ds/chained_hash.hh"
#include "ds/cuckoo_hash.hh"
#include "ds/linked_list.hh"
#include "ds/skip_list.hh"
#include "ds/trie.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

int g_failures = 0;

void
check(bool ok, const char* what)
{
    if (!ok) {
        std::printf("FAIL: %s\n", what);
        ++g_failures;
    }
}

std::vector<std::pair<Key, std::uint64_t>>
makeItems(Rng& rng, std::size_t n, std::size_t key_len)
{
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (std::size_t i = 0; i < n; ++i)
        items.emplace_back(randomKey(rng, key_len), 1000 + i);
    return items;
}

template <typename Ds>
void
runQueries(World& world, Ds& ds, const std::vector<Key>& keys,
           const char* name)
{
    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 20;
    for (const auto& key : keys) {
        QueryTrace trace = ds.query(key);
        QueryJob job;
        job.headerAddr = ds.headerAddr();
        job.keyAddr = ds.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(trace));
    }
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats =
            runQei(world, prep, DriverConfig(scheme).withMode(QueryMode::Blocking));
        std::printf("  %-16s %-16s mismatches=%llu cycles/query=%.1f "
                    "occ=%.1f\n",
                    name, scheme.name().c_str(),
                    static_cast<unsigned long long>(stats.mismatches),
                    stats.cyclesPerQuery(), stats.avgQstOccupancy);
        check(stats.mismatches == 0, name);
        check(stats.exceptions == 0, "exceptions");
    }
    const CoreRunResult base = runBaseline(world, prep);
    std::printf("  %-16s baseline cycles/query=%.1f instr/query=%.0f\n",
                name, base.cyclesPerQuery(),
                static_cast<double>(base.instructions) /
                    static_cast<double>(base.queries));
}

} // namespace

int
main()
{
    World world(42);
    Rng rng(7);

    {
        auto items = makeItems(rng, 64, 16);
        SimLinkedList ll(world.vm, items);
        std::vector<Key> keys;
        for (int i = 0; i < 40; ++i)
            keys.push_back(i % 4 == 0 ? randomKey(rng, 16)
                                      : items[rng.below(items.size())]
                                            .first);
        runQueries(world, ll, keys, "linked-list");
    }
    {
        auto items = makeItems(rng, 500, 16);
        SimBst bst(world.vm, items);
        std::vector<Key> keys;
        for (int i = 0; i < 40; ++i)
            keys.push_back(i % 4 == 0 ? randomKey(rng, 16)
                                      : items[rng.below(items.size())]
                                            .first);
        runQueries(world, bst, keys, "bst");
    }
    {
        auto items = makeItems(rng, 500, 24);
        SimSkipList sl(world.vm, items);
        std::vector<Key> keys;
        for (int i = 0; i < 40; ++i)
            keys.push_back(i % 4 == 0 ? randomKey(rng, 24)
                                      : items[rng.below(items.size())]
                                            .first);
        runQueries(world, sl, keys, "skip-list");
    }
    {
        auto items = makeItems(rng, 600, 16);
        SimChainedHash ch(world.vm, items, 256);
        std::vector<Key> keys;
        for (int i = 0; i < 40; ++i)
            keys.push_back(i % 4 == 0 ? randomKey(rng, 16)
                                      : items[rng.below(items.size())]
                                            .first);
        runQueries(world, ch, keys, "chained-hash");
    }
    {
        SimCuckooHash cuckoo(world.vm, 256, 16);
        std::vector<Key> installed;
        for (int i = 0; i < 800; ++i) {
            Key k = randomKey(rng, 16);
            if (cuckoo.insert(k, 5000 + i))
                installed.push_back(std::move(k));
        }
        std::vector<Key> keys;
        for (int i = 0; i < 40; ++i)
            keys.push_back(i % 4 == 0
                               ? randomKey(rng, 16)
                               : installed[rng.below(installed.size())]);
        runQueries(world, cuckoo, keys, "cuckoo-hash");
    }
    {
        std::vector<std::string> words = {"he",   "she",  "his",
                                          "hers", "query", "cloud"};
        SimTrie trie(world.vm, words);
        std::vector<std::uint8_t> input;
        for (char c : std::string("ushersheqqueryclouds"))
            input.push_back(static_cast<std::uint8_t>(c));
        QueryTrace gold = trie.match(input);
        std::printf("  trie matches=%llu\n",
                    static_cast<unsigned long long>(gold.resultValue));

        Prepared prep;
        prep.profile.nonQueryInstrPerOp = 20;
        QueryJob job;
        job.headerAddr = trie.makeHeader(
            static_cast<std::uint32_t>(input.size()));
        job.keyAddr = trie.stageInput(input);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = true;
        job.expectValue = gold.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(gold);
        for (const auto& scheme : SchemeConfig::allSchemes()) {
            const QeiRunStats stats =
                runQei(world, prep, DriverConfig(scheme).withMode(QueryMode::Blocking));
            check(stats.mismatches == 0, "trie");
        }
    }

    std::printf(g_failures == 0 ? "SMOKE OK\n" : "SMOKE FAILED (%d)\n",
                g_failures);
    return g_failures == 0 ? 0 : 1;
}
