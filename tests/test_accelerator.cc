// End-to-end accelerator tests: functional parity with the software
// references on every structure and scheme, exception semantics,
// non-blocking result delivery, interrupt flush, and the firmware
// update path.

#include <gtest/gtest.h>

#include "ds/bst.hh"
#include "ds/chained_hash.hh"
#include "ds/cuckoo_hash.hh"
#include "ds/linked_list.hh"
#include "ds/skip_list.hh"
#include "ds/trie.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

struct AccelFixture : ::testing::Test
{
    AccelFixture() : world(99), rng(5) {}

    std::vector<std::pair<Key, std::uint64_t>>
    makeItems(std::size_t n, std::size_t key_len)
    {
        std::vector<std::pair<Key, std::uint64_t>> items;
        for (std::size_t i = 0; i < n; ++i)
            items.emplace_back(randomKey(rng, key_len), 3000 + i);
        return items;
    }

    template <typename Ds>
    Prepared
    makeJobs(Ds& ds, const std::vector<Key>& keys)
    {
        Prepared prep;
        prep.profile.nonQueryInstrPerOp = 20;
        for (const auto& key : keys) {
            QueryTrace trace = ds.query(key);
            QueryJob job;
            job.headerAddr = ds.headerAddr();
            job.keyAddr = ds.stageKey(key);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = trace.found;
            job.expectValue = trace.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(trace));
        }
        return prep;
    }

    template <typename Ds>
    std::vector<Key>
    mixedKeys(Ds&, const std::vector<std::pair<Key, std::uint64_t>>&
                       items,
              int n, std::size_t key_len)
    {
        std::vector<Key> keys;
        for (int i = 0; i < n; ++i) {
            keys.push_back(i % 4 == 0
                               ? randomKey(rng, key_len)
                               : items[rng.below(items.size())].first);
        }
        return keys;
    }

    World world;
    Rng rng;
};

} // namespace

TEST_F(AccelFixture, LinkedListAllSchemesFunctional)
{
    auto items = makeItems(40, 16);
    SimLinkedList ll(world.vm, items);
    Prepared prep = makeJobs(ll, mixedKeys(ll, items, 30, 16));
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        EXPECT_EQ(stats.mismatches, 0u) << scheme.name();
        EXPECT_EQ(stats.exceptions, 0u) << scheme.name();
        EXPECT_EQ(stats.queries, 30u);
    }
}

TEST_F(AccelFixture, SkipListBlockingAndNonBlockingAgree)
{
    auto items = makeItems(200, 24);
    SimSkipList sl(world.vm, items);
    Prepared prep = makeJobs(sl, mixedKeys(sl, items, 40, 24));
    const QeiRunStats blocking =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()).withMode(QueryMode::Blocking));
    const QeiRunStats nonBlocking =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()).withMode(QueryMode::NonBlocking));
    EXPECT_EQ(blocking.mismatches, 0u);
    EXPECT_EQ(nonBlocking.mismatches, 0u);
}

TEST_F(AccelFixture, NonBlockingWritesResultSlots)
{
    auto items = makeItems(30, 16);
    SimChainedHash ch(world.vm, items, 64);
    Prepared prep = makeJobs(ch, {items[0].first, randomKey(rng, 16)});
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()).withMode(QueryMode::NonBlocking));
    EXPECT_EQ(stats.mismatches, 0u);
    // Slot 0: found -> status 1 + value; slot 1: likely not found.
    EXPECT_EQ(world.vm.read<std::uint64_t>(prep.jobs[0].resultAddr),
              1u);
    EXPECT_EQ(world.vm.read<std::uint64_t>(prep.jobs[0].resultAddr + 8),
              prep.jobs[0].expectValue);
    if (!prep.jobs[1].expectFound) {
        EXPECT_EQ(world.vm.read<std::uint64_t>(
                      prep.jobs[1].resultAddr),
                  2u);
    }
}

TEST_F(AccelFixture, UnmappedHeaderRaisesPageFault)
{
    auto items = makeItems(10, 16);
    SimLinkedList ll(world.vm, items);
    Prepared prep = makeJobs(ll, {items[0].first});
    prep.jobs[0].headerAddr = 0x40; // never mapped
    prep.jobs[0].expectFound = false;
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.exceptions, 1u);
    EXPECT_EQ(stats.mismatches, 1u); // exception != expected result
}

TEST_F(AccelFixture, BadStructTypeRaisesBadHeader)
{
    auto items = makeItems(10, 16);
    SimLinkedList ll(world.vm, items);
    Prepared prep = makeJobs(ll, {items[0].first});
    // Corrupt the type field in the header.
    StructHeader h = StructHeader::readFrom(world.vm, ll.headerAddr());
    h.type = static_cast<StructType>(9);
    const Addr corrupt = world.vm.allocLines(kCacheLineBytes);
    h.writeTo(world.vm, corrupt);
    prep.jobs[0].headerAddr = corrupt;
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.exceptions, 1u);
}

TEST_F(AccelFixture, DanglingNodePointerFaultsNotHangs)
{
    auto items = makeItems(8, 16);
    SimLinkedList ll(world.vm, items);
    // Generate the reference trace FIRST (on the intact list), then
    // corrupt the second node's next pointer to unmapped space.
    Prepared prep = makeJobs(ll, {items[7].first});
    prep.jobs[0].expectFound = false;
    const Addr first = ll.rootAddr();
    const Addr second = world.vm.read<std::uint64_t>(first);
    world.vm.write<std::uint64_t>(second, 0xDEAD0000ULL);
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.exceptions, 1u);
}

TEST_F(AccelFixture, NonBlockingFaultWritesErrorCode)
{
    auto items = makeItems(10, 16);
    SimLinkedList ll(world.vm, items);
    Prepared prep = makeJobs(ll, {items[0].first});
    prep.jobs[0].headerAddr = 0x40;
    prep.jobs[0].expectFound = false;
    runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()).withMode(QueryMode::NonBlocking));
    const std::uint64_t status =
        world.vm.read<std::uint64_t>(prep.jobs[0].resultAddr);
    EXPECT_EQ(status & 0x100u, 0x100u); // error base
    EXPECT_EQ(status & 0xFFu,
              static_cast<std::uint64_t>(QueryError::PageFault));
}

TEST_F(AccelFixture, InterruptFlushAbortsNonBlocking)
{
    world.resetTiming();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware,
                     SchemeConfig::coreIntegrated());

    auto items = makeItems(64, 16);
    SimLinkedList ll(world.vm, items);
    const Addr keyAddr = ll.stageKey(items[50].first);
    const Addr resultAddr = world.vm.alloc(16, 16);

    bool completed = false;
    Accelerator& accel = system.acceleratorFor(keyAddr, 0);
    const int slot = accel.enqueue(
        ll.headerAddr(), keyAddr, resultAddr, QueryMode::NonBlocking, 0,
        [&](const QstEntry&) { completed = true; });
    ASSERT_GE(slot, 0);

    // Let it get going, then take the "interrupt".
    world.events.run(40);
    const Cycles flushCycles = system.flushAll();
    world.events.run();

    EXPECT_FALSE(completed); // callback dropped by the flush
    EXPECT_GT(flushCycles, 0u);
    const std::uint64_t status =
        world.vm.read<std::uint64_t>(resultAddr);
    EXPECT_EQ(status & 0xFFu,
              static_cast<std::uint64_t>(QueryError::Aborted));
}

TEST_F(AccelFixture, FirmwareUpdateEnablesNewSubtype)
{
    // Install the hash-of-lists program into a previously empty slot
    // and run a query against a header that names that slot.
    const auto kNewType = static_cast<StructType>(8);
    world.firmware.installProgram(kNewType,
                                  firmware::buildHashOfLists());

    auto items = makeItems(60, 16);
    SimChainedHash ch(world.vm, items, 64, HashFunction::Crc32c);
    StructHeader h = StructHeader::readFrom(world.vm, ch.headerAddr());
    h.type = kNewType;
    const Addr header = world.vm.allocLines(kCacheLineBytes);
    h.writeTo(world.vm, header);

    Prepared prep = makeJobs(ch, {items[3].first});
    prep.jobs[0].headerAddr = header;
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_EQ(stats.exceptions, 0u);
}

TEST_F(AccelFixture, HashOfListsCombinedStructure)
{
    auto items = makeItems(120, 16);
    SimChainedHash combined(world.vm, items, 16, HashFunction::Jenkins,
                            StructType::HashOfLists);
    Prepared prep =
        makeJobs(combined, mixedKeys(combined, items, 25, 16));
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.mismatches, 0u);
}

TEST_F(AccelFixture, TrieStreamMatchThroughAccelerator)
{
    SimTrie trie(world.vm, {"he", "she", "his", "hers"});
    std::vector<std::uint8_t> input;
    for (char c : std::string("usherswithhishers"))
        input.push_back(static_cast<std::uint8_t>(c));
    const QueryTrace gold = trie.match(input);

    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 10;
    QueryJob job;
    job.headerAddr =
        trie.makeHeader(static_cast<std::uint32_t>(input.size()));
    job.keyAddr = trie.stageInput(input);
    job.resultAddr = world.vm.alloc(16, 16);
    job.expectFound = true;
    job.expectValue = gold.resultValue;
    prep.jobs.push_back(job);
    prep.traces.push_back(gold);
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        EXPECT_EQ(stats.mismatches, 0u) << scheme.name();
    }
}

TEST_F(AccelFixture, OccupancyNeverExceedsCapacity)
{
    auto items = makeItems(300, 16);
    SimBst bst(world.vm, items);
    Prepared prep = makeJobs(bst, mixedKeys(bst, items, 60, 16));
    prep.profile.nonQueryInstrPerOp = 2; // maximum pressure
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_LE(stats.avgQstOccupancy, 10.0);
    EXPECT_EQ(stats.mismatches, 0u);
}

TEST_F(AccelFixture, BigKeysCompareRemotely)
{
    // 200 B keys exceed the QST staging buffer, forcing the remote
    // CHA comparators on the Core-integrated scheme.
    auto items = makeItems(40, 200);
    SimLinkedList ll(world.vm, items);
    Prepared prep = makeJobs(ll, mixedKeys(ll, items, 15, 200));
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_GT(stats.remoteCompares, 0u);
}
