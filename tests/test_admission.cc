// Overload-resilience layer tests: the admission controller's policy
// state machines, the tenant-quota arithmetic, the new traffic
// sources (Diurnal / TraceReplay / TenantMix), and the Driver's
// serving path — its strict opt-in (None + single tenant keeps the
// legacy artifacts byte-identical), its determinism across host
// threads, sustained-saturation behaviour (QUERY_NB backoff, no
// watchdog false positive during long shed intervals), and the
// shed x fault-injection invariant: a shed query never consumes a
// fault decision, so the admitted set's outcome is bit-stable whether
// shed work is dropped or degraded.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/thread_pool.hh"
#include "fault/fault_config.hh"
#include "qei/admission.hh"
#include "traffic/traffic.hh"
#include "workloads/dpdk_fib.hh"
#include "workloads/workload.hh"

using namespace qei;
using traffic::Arrival;
using traffic::Bursty;
using traffic::Diurnal;
using traffic::PoissonOpenLoop;
using traffic::TenantMix;
using traffic::TraceReplay;

namespace {

std::vector<Cycles>
ticksOf(const std::vector<Arrival>& arrivals)
{
    std::vector<Cycles> ticks;
    ticks.reserve(arrivals.size());
    for (const Arrival& a : arrivals)
        ticks.push_back(a.tick);
    return ticks;
}

/** One small dpdk world per call — cheap enough for a test body. */
struct Fixture
{
    DpdkFibWorkload workload{std::size_t{2048}, std::size_t{512}};
    World world;
    Prepared prep;

    explicit Fixture(std::size_t queries = 200,
                     ChipConfig chip = defaultChip(),
                     std::uint64_t seed = 17)
        : world(seed, chip)
    {
        workload.build(world);
        prep = workload.prepare(world, queries);
    }
};

} // namespace

// ---------------------------------------------------------------- //
// New traffic sources                                              //
// ---------------------------------------------------------------- //

TEST(Traffic, DiurnalIsDeterministicAndMonotone)
{
    Diurnal a(200.0, 0.5, 20000.0, /*seed=*/9);
    Diurnal b(200.0, 0.5, 20000.0, /*seed=*/9);
    Diurnal c(200.0, 0.5, 20000.0, /*seed=*/10);
    EXPECT_FALSE(a.closedLoop());
    const auto ta = ticksOf(a.schedule(400));
    EXPECT_EQ(ta, ticksOf(b.schedule(400)));
    EXPECT_NE(ta, ticksOf(c.schedule(400)));
    EXPECT_EQ(ta, ticksOf(a.schedule(400))); // pure function
    for (std::size_t i = 1; i < ta.size(); ++i)
        EXPECT_GE(ta[i], ta[i - 1]);
}

TEST(Traffic, DiurnalWithZeroAmplitudeIsPlainPoisson)
{
    // The envelope collapses to 1.0, so the draw sequence — and the
    // resulting timeline — matches PoissonOpenLoop at the same seed.
    Diurnal flat(300.0, 0.0, 50000.0, /*seed=*/21);
    PoissonOpenLoop poisson(300.0, /*seed=*/21);
    EXPECT_EQ(ticksOf(flat.schedule(256)),
              ticksOf(poisson.schedule(256)));
}

TEST(Traffic, DiurnalPeakIsDenserThanTrough)
{
    // With a strong envelope, more arrivals land per cycle near the
    // rate peak (first half-period) than near the trough.
    Diurnal src(100.0, 0.9, 40000.0, /*seed=*/3);
    const auto arrivals = src.schedule(600);
    std::size_t peak = 0, trough = 0;
    for (const Arrival& a : arrivals) {
        const Cycles phase = a.tick % 40000;
        if (phase < 20000)
            ++peak;
        else
            ++trough;
    }
    EXPECT_GT(peak, trough);
}

TEST(Traffic, TraceReplayReplaysAndWraps)
{
    TraceReplay src({0, 40, 90, 200}, /*tenants=*/2);
    const auto one = src.schedule(4);
    EXPECT_EQ(ticksOf(one), (std::vector<Cycles>{0, 40, 90, 200}));
    EXPECT_EQ(one[0].tenant, 0);
    EXPECT_EQ(one[1].tenant, 1);

    // Asking for more than the trace wraps it, offset by the span
    // plus one mean gap so shape and rate carry over.
    const auto two = src.schedule(8);
    const Cycles offset = 200 + std::max<Cycles>(200 / 3, 1);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(two[i].tick, one[i].tick);
        EXPECT_EQ(two[4 + i].tick, offset + one[i].tick);
    }
    for (std::size_t i = 0; i < two.size(); ++i)
        EXPECT_EQ(two[i].queryIndex, i);
}

TEST(Traffic, TenantMixTagsTenantsAndApportionsByWeight)
{
    auto make = []() {
        std::vector<TenantMix::Stream> streams;
        streams.push_back(
            {std::make_shared<Bursty>(100.0, 4.0, 1.0, /*seed=*/5),
             3.0});
        streams.push_back(
            {std::make_shared<PoissonOpenLoop>(400.0, /*seed=*/6),
             1.0});
        return TenantMix(std::move(streams));
    };
    TenantMix mix = make();
    EXPECT_EQ(mix.tenants(), 2);
    const auto arrivals = mix.schedule(200);
    ASSERT_EQ(arrivals.size(), 200u);

    // Weighted count split (3:1), every arrival tagged by stream.
    std::size_t byTenant[2] = {0, 0};
    for (const Arrival& a : arrivals) {
        ASSERT_GE(a.tenant, 0);
        ASSERT_LT(a.tenant, 2);
        ++byTenant[a.tenant];
    }
    EXPECT_EQ(byTenant[0], 150u);
    EXPECT_EQ(byTenant[1], 50u);

    // Merged by tick, query indices reassigned densely in tick order.
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i].tick, arrivals[i - 1].tick);
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i].queryIndex, i);

    // Deterministic replay (sub-sources are pure too).
    EXPECT_EQ(ticksOf(arrivals), ticksOf(make().schedule(200)));
}

TEST(Traffic, CatalogListsTheNewSources)
{
    bool diurnal = false, replay = false, mix = false;
    for (const auto& entry : traffic::catalog()) {
        diurnal = diurnal || entry->name() == "diurnal";
        replay = replay || entry->name() == "replay";
        mix = mix || entry->name() == "mix";
    }
    EXPECT_TRUE(diurnal);
    EXPECT_TRUE(replay);
    EXPECT_TRUE(mix);
}

// ---------------------------------------------------------------- //
// AdmissionController unit tests                                   //
// ---------------------------------------------------------------- //

TEST(Admission, QueueLimitTailDrops)
{
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::QueueLimit;
    cfg.queueLimit = 4;
    AdmissionController adm(cfg);
    EXPECT_TRUE(adm.decide(0, 0, 3));
    EXPECT_FALSE(adm.decide(0, 0, 4));
    EXPECT_FALSE(adm.decide(0, 0, 9));
    EXPECT_EQ(adm.admitted(), 1u);
    EXPECT_EQ(adm.shed(), 2u);
}

TEST(Admission, TokenBucketIsPerTenantAndRefills)
{
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::TokenBucket;
    cfg.tokensPerKCycle = 1024.0; // 1 token per cycle
    cfg.bucketDepth = 2.0;
    AdmissionController adm(cfg);
    // Fresh tenants start with a full (depth 2) bucket.
    EXPECT_TRUE(adm.decide(0, 0, 0));
    EXPECT_TRUE(adm.decide(0, 0, 0));
    EXPECT_FALSE(adm.decide(0, 0, 0)); // drained
    EXPECT_TRUE(adm.decide(1, 0, 0));  // other tenant unaffected
    // One cycle refills one token for tenant 0.
    EXPECT_TRUE(adm.decide(0, 1, 0));
    EXPECT_FALSE(adm.decide(0, 1, 0));
}

TEST(Admission, AdaptiveBreachesAndRecoversOnDrain)
{
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::Adaptive;
    cfg.sloP99 = 100.0;
    cfg.window = 8;
    cfg.minSamples = 4;
    AdmissionController adm(cfg);
    EXPECT_TRUE(adm.decide(0, 0, 5));
    for (int i = 0; i < 4; ++i)
        adm.onAdmittedCompletion(500.0); // far past the SLO
    EXPECT_TRUE(adm.shedding());
    EXPECT_EQ(adm.sloBreaches(), 1u);
    // Still shedding while a backlog remains...
    EXPECT_FALSE(adm.decide(0, 10, 3));
    // ...but a drained queue ends the episode (without this, a shed
    // episode that outlives the backlog would never see another
    // admitted completion and would shed forever).
    EXPECT_TRUE(adm.decide(0, 20, 0));
    EXPECT_FALSE(adm.shedding());
}

TEST(Admission, TenantQuotaGuaranteedSlots)
{
    TenantQuota none;
    EXPECT_EQ(tenantGuaranteedSlots(none, 10, 0, 4), 10);

    TenantQuota hard;
    hard.share = TenantShare::Hard;
    EXPECT_EQ(tenantGuaranteedSlots(hard, 10, 0, 4), 2);
    EXPECT_EQ(tenantGuaranteedSlots(hard, 10, 3, 4), 2);
    // Every tenant keeps at least one slot, however many tenants.
    EXPECT_EQ(tenantGuaranteedSlots(hard, 10, 15, 16), 1);

    TenantQuota weighted;
    weighted.share = TenantShare::Weighted;
    weighted.weights = {3, 1};
    EXPECT_EQ(tenantGuaranteedSlots(weighted, 8, 0, 2), 6);
    EXPECT_EQ(tenantGuaranteedSlots(weighted, 8, 1, 2), 2);
    // Weights beyond the vector reuse the last entry.
    weighted.weights = {2};
    EXPECT_EQ(tenantGuaranteedSlots(weighted, 8, 3, 4), 2);
}

// ---------------------------------------------------------------- //
// Serving path through the Driver                                  //
// ---------------------------------------------------------------- //

TEST(Admission, NonePolicySingleTenantKeepsLegacyArtifacts)
{
    // The overload layer is strictly opt-in: a default (None)
    // AdmissionConfig must leave open-loop runs on the legacy path,
    // with bit-identical results and an unchanged stats-tree shape.
    auto run = [](bool explicit_default) {
        Fixture f(150);
        std::string statsJson;
        DriverConfig config(SchemeConfig::coreIntegrated());
        config
            .withTraffic(
                std::make_shared<PoissonOpenLoop>(200.0, /*seed=*/3))
            .captureStats(&statsJson);
        if (explicit_default)
            config.withAdmission(AdmissionConfig{});
        const QeiRunStats stats = runQei(f.world, f.prep, config);
        return std::make_pair(stats, statsJson);
    };
    const auto [plain, plainJson] = run(false);
    const auto [opted, optedJson] = run(true);
    EXPECT_EQ(plainJson, optedJson);
    EXPECT_EQ(plain.resultChecksum, opted.resultChecksum);
    EXPECT_EQ(plain.cycles, opted.cycles);
    // No overload-layer residue in the legacy stats tree.
    EXPECT_EQ(plainJson.find("system.admission"), std::string::npos);
    EXPECT_EQ(plainJson.find("tenant"), std::string::npos);
    EXPECT_EQ(plainJson.find("degraded"), std::string::npos);
    EXPECT_EQ(plain.admittedQueries, 0u);
    EXPECT_EQ(plain.sheddedQueries, 0u);
    EXPECT_TRUE(plain.tenants.empty());
}

TEST(Admission, PermissiveServingMatchesLegacyOutcome)
{
    // A never-shedding policy routes through the serving loop but
    // must produce the same functional outcome as the legacy open
    // loop (the digest is order-independent by construction).
    auto traffic = []() {
        return std::make_shared<PoissonOpenLoop>(150.0, /*seed=*/5);
    };
    Fixture legacy(200);
    const QeiRunStats before =
        runQei(legacy.world, legacy.prep,
               DriverConfig(SchemeConfig::coreIntegrated())
                   .withTraffic(traffic()));

    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::QueueLimit;
    cfg.queueLimit = 100000; // admits everything
    Fixture serving(200);
    const QeiRunStats after =
        runQei(serving.world, serving.prep,
               DriverConfig(SchemeConfig::coreIntegrated())
                   .withTraffic(traffic())
                   .withAdmission(cfg));

    EXPECT_EQ(after.admittedQueries, after.queries);
    EXPECT_EQ(after.sheddedQueries, 0u);
    EXPECT_EQ(after.mismatches, 0u);
    EXPECT_EQ(after.resultChecksum, before.resultChecksum);
    EXPECT_EQ(after.admittedChecksum, after.resultChecksum);
    ASSERT_EQ(after.tenants.size(), 1u);
    EXPECT_EQ(after.tenants[0].admitted, after.queries);
}

TEST(Admission, NbBackoffSurvivesSustainedQstSaturation)
{
    // A 2-entry QST under 64-deep QUERY_NB issue batches is
    // effectively never drained: the issuing core must back off
    // repeatedly, and the run must still complete correctly.
    SchemeConfig scheme = SchemeConfig::coreIntegrated();
    scheme.qstEntries = 2;
    Fixture f(300);
    const QeiRunStats stats =
        runQei(f.world, f.prep,
               DriverConfig(scheme)
                   .withMode(QueryMode::NonBlocking)
                   .withPollBatch(64));
    EXPECT_GT(stats.qstBackoffs, 0u);
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_EQ(stats.queries, 300u);
}

TEST(Admission, WatchdogStaysQuietThroughLongShedIntervals)
{
    // 24 arrivals spaced ~1.5 watchdog epochs apart; the token bucket
    // admits the first and sheds the rest (its refill rate is far
    // too slow to ever reissue a token). For ~3.5M cycles the only
    // events are shed arrivals — without shedding counting as
    // progress, the watchdog would strike out and panic.
    std::vector<Cycles> ticks;
    for (int i = 0; i < 24; ++i)
        ticks.push_back(static_cast<Cycles>(i) * 150000);
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::TokenBucket;
    cfg.tokensPerKCycle = 1e-6;
    cfg.bucketDepth = 1.0;
    Fixture f(24);
    std::string statsJson;
    const QeiRunStats stats =
        runQei(f.world, f.prep,
               DriverConfig(SchemeConfig::coreIntegrated())
                   .withTraffic(std::make_shared<TraceReplay>(ticks))
                   .withAdmission(cfg)
                   .captureStats(&statsJson));
    EXPECT_EQ(stats.admittedQueries, 1u);
    EXPECT_EQ(stats.sheddedQueries, 23u);
    EXPECT_EQ(stats.mismatches, 0u);
    // The watchdog really was armed across many epochs.
    EXPECT_NE(statsJson.find("watchdog"), std::string::npos);
}

TEST(Admission, ServingIsDeterministicAcrossHostThreads)
{
    // The acceptance invariant: identical admitted-set and full-run
    // digests whether cells run serially or on 8 host threads.
    auto cell = [](std::size_t) {
        AdmissionConfig cfg;
        cfg.policy = AdmissionPolicy::Adaptive;
        cfg.sloP99 = 400.0;
        cfg.window = 16;
        cfg.minSamples = 4;
        cfg.degradeToCore = true;
        SchemeConfig scheme = SchemeConfig::coreIntegrated();
        scheme.tenantQuota.share = TenantShare::Weighted;
        Fixture f(250);
        const QeiRunStats stats = runQei(
            f.world, f.prep,
            DriverConfig(scheme)
                .withTraffic(std::make_shared<PoissonOpenLoop>(
                    8.0, /*seed=*/11, /*tenants=*/4))
                .withAdmission(cfg));
        return std::make_tuple(stats.admittedChecksum,
                               stats.resultChecksum,
                               stats.admittedQueries,
                               stats.sheddedQueries, stats.cycles);
    };
    const auto serial = parallelMap(1, 8, cell);
    const auto parallel = parallelMap(8, 8, cell);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]);
        EXPECT_EQ(serial[i], serial[0]); // and across repetitions
    }
    EXPECT_GT(std::get<3>(serial[0]), 0u); // the cell really sheds
}

TEST(Admission, ShedNeverConsumesAFaultDecision)
{
    // Fault decisions are a pure function of (seed, queryId); a shed
    // query must not shift them. TokenBucket decisions depend only on
    // the (tenant, tick) arrival stream — fixed by the seed — so the
    // admitted set is provably the same whether shed queries are
    // dropped or degraded, and therefore so is every fault counter:
    // degraded core execution bypasses the accelerator and consumes
    // no fault decisions.
    auto run = [](bool degrade) {
        ChipConfig chip = defaultChip();
        chip.faults = parseFaultSpec("pf=0.2,bh=0.05");
        AdmissionConfig cfg;
        cfg.policy = AdmissionPolicy::TokenBucket;
        cfg.tokensPerKCycle = 25.0; // ~half the offered rate
        cfg.bucketDepth = 4.0;
        cfg.degradeToCore = degrade;
        Fixture f(250, chip);
        return runQei(f.world, f.prep,
                      DriverConfig(SchemeConfig::coreIntegrated())
                          .withTraffic(std::make_shared<PoissonOpenLoop>(
                              20.0, /*seed=*/13))
                          .withAdmission(cfg));
    };
    const QeiRunStats dropped = run(false);
    const QeiRunStats degraded = run(true);
    EXPECT_GT(dropped.sheddedQueries, 0u);
    EXPECT_GT(dropped.faultsInjected, 0u);
    EXPECT_EQ(dropped.admittedChecksum, degraded.admittedChecksum);
    EXPECT_EQ(dropped.admittedQueries, degraded.admittedQueries);
    // Degraded core execution bypasses the accelerator entirely, so
    // it consumes no fault decisions: identical injection counts.
    EXPECT_EQ(dropped.faultsInjected, degraded.faultsInjected);
    EXPECT_EQ(dropped.faultFlushes, degraded.faultFlushes);
    EXPECT_EQ(degraded.degradedQueries, degraded.sheddedQueries);
    EXPECT_EQ(degraded.mismatches, 0u);
}

TEST(Admission, HardQuotaCapsPerTenantOccupancy)
{
    // Four tenants under a Hard quota on a 10-entry QST: 2 slots
    // each. Mean occupancy sampled at issue can never exceed the cap.
    SchemeConfig scheme = SchemeConfig::coreIntegrated();
    scheme.tenantQuota.share = TenantShare::Hard;
    AdmissionConfig cfg;
    cfg.policy = AdmissionPolicy::QueueLimit;
    cfg.queueLimit = 64;
    Fixture f(300);
    const QeiRunStats stats = runQei(
        f.world, f.prep,
        DriverConfig(scheme)
            .withTraffic(std::make_shared<Bursty>(
                4.0, 16.0, 1.0, /*seed=*/19, /*tenants=*/4))
            .withAdmission(cfg));
    ASSERT_EQ(stats.tenants.size(), 4u);
    for (const auto& t : stats.tenants) {
        EXPECT_GT(t.admitted, 0u);
        EXPECT_LE(t.occupancyMean, 2.0 + 1e-9);
    }
    EXPECT_EQ(stats.mismatches, 0u);
}
