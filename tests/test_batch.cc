// QUERY_BATCH subsystem tests: QST window reservation invariants, the
// sequence-aware batch planner, end-to-end functional identity with
// the scalar path (result_checksum), batching x fault injection, and
// host-thread-count invariance of the batched experiment matrix.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_config.hh"
#include "qei/batch.hh"
#include "qei/driver.hh"
#include "qei/qst.hh"
#include "workloads/workload.hh"

using namespace qei;
using namespace qei::bench;

namespace {

// ---------------------------------------------------------------
// QST window reservation invariants
// ---------------------------------------------------------------

TEST(QstWindow, ReserveAllocateUnreserveInvariants)
{
    QueryStateTable qst(8);
    EXPECT_EQ(qst.findWindow(4), 0);
    EXPECT_EQ(qst.reserveWindow(4), 0);
    EXPECT_EQ(qst.reservedSlots(), 4u);
    EXPECT_TRUE(qst.isReserved(0));

    // Scalar allocation skips the reserved run.
    EXPECT_EQ(qst.allocate(), 4);

    // Occupancy does not block a window: a reservation is a claim on
    // each slot's next vacancy, so the second descriptor's window may
    // overlap the occupied slot 4.
    EXPECT_EQ(qst.findWindow(4), 4);
    EXPECT_EQ(qst.reserveWindow(4), 4);
    EXPECT_EQ(qst.reservedSlots(), 8u);
    // With every slot reserved the scalar path backs off, not panics.
    EXPECT_EQ(qst.allocate(), -1);

    // Members fill reserved slots through allocateInWindow only.
    EXPECT_EQ(qst.allocateInWindow(0, 4), 0);
    EXPECT_EQ(qst.allocateInWindow(0, 4), 1);
    qst.release(0);
    EXPECT_TRUE(qst.isReserved(0)); // release keeps the batch's claim
    EXPECT_EQ(qst.allocate(), -1);  // still invisible to scalar
    EXPECT_EQ(qst.allocateInWindow(0, 4), 0); // but refillable

    // Early per-slot handoff during a drain: the freed slot becomes
    // scalar-visible (or reservable) immediately.
    qst.release(1);
    qst.unreserveSlot(1);
    EXPECT_FALSE(qst.isReserved(1));
    EXPECT_EQ(qst.reservedSlots(), 7u);
    EXPECT_EQ(qst.allocate(), 1);
    EXPECT_EQ(qst.findWindow(2), -1); // no contiguous unreserved pair
}

TEST(QstWindow, WindowTooLargeNeverFits)
{
    QueryStateTable qst(4);
    EXPECT_EQ(qst.reserveWindow(3), 0);
    EXPECT_EQ(qst.findWindow(2), -1);
    EXPECT_EQ(qst.findWindow(1), 3);
    qst.releaseWindow(0, 3);
    EXPECT_EQ(qst.reservedSlots(), 0u);
    EXPECT_EQ(qst.findWindow(4), 0);
}

TEST(QstWindowDeathTest, DoubleUnreserveAsserts)
{
    QueryStateTable qst(4);
    ASSERT_EQ(qst.reserveWindow(2), 0);
    qst.unreserveSlot(0);
    EXPECT_DEATH(qst.unreserveSlot(0), "unreserved");
}

// ---------------------------------------------------------------
// Sequence-aware planner
// ---------------------------------------------------------------

std::vector<QueryJob>
syntheticJobs(std::size_t n)
{
    std::vector<QueryJob> jobs(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Descending addresses so locality sorting has work to do.
        jobs[i].headerAddr = 0x1000 + 0x100 * ((n - i) % 3);
        jobs[i].keyAddr = 0x90000 - static_cast<Addr>(i) * 0x40;
        jobs[i].resultAddr = kNullAddr;
    }
    return jobs;
}

TEST(BatchPlanner, CoversEveryJobExactlyOnceAndChunksToSize)
{
    const auto jobs = syntheticJobs(23);
    const BatchConfig config{8, BatchReorder::ByKeyLocality, true};
    const auto plan = planQueryBatches(jobs, config, [](const QueryJob& j) {
        return static_cast<int>((j.keyAddr >> 6) % 2);
    });
    std::vector<int> seen(jobs.size(), 0);
    for (const PlannedBatch& b : plan) {
        EXPECT_LE(b.jobIdxs.size(), 8u);
        EXPECT_GE(b.jobIdxs.size(), 1u);
        for (std::size_t idx : b.jobIdxs)
            ++seen[idx];
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "job " << i;
}

TEST(BatchPlanner, NoReorderPreservesPerAccelSubmissionOrder)
{
    const auto jobs = syntheticJobs(16);
    const BatchConfig config{4, BatchReorder::None, true};
    const auto plan = planQueryBatches(
        jobs, config, [](const QueryJob&) { return 0; });
    std::size_t prev = 0;
    bool first = true;
    for (const PlannedBatch& b : plan) {
        EXPECT_EQ(b.accel, 0);
        for (std::size_t idx : b.jobIdxs) {
            if (!first)
                EXPECT_GT(idx, prev);
            prev = idx;
            first = false;
        }
    }
}

// ---------------------------------------------------------------
// End-to-end functional identity
// ---------------------------------------------------------------

/** Build workload @p w fresh and run it, optionally batched/faulted. */
QeiRunStats
runOnce(std::size_t w, std::size_t queries, const BatchConfig& batch,
        const char* fault_spec = "")
{
    ChipConfig chip = defaultChip();
    chip.faults = fault_spec[0] != '\0' ? parseFaultSpec(fault_spec)
                                        : FaultConfig{};
    std::unique_ptr<Workload> workload = makeWorkloadFactories()[w]();
    World world(42, chip);
    workload->build(world);
    const Prepared prepared = workload->prepare(world, queries);
    DriverConfig config(SchemeConfig::coreIntegrated());
    if (batch.enabled())
        config.withBatch(batch);
    return runQei(world, prepared, config);
}

TEST(BatchExecution, ChecksumsMatchScalarOnEveryWorkload)
{
    // Per-workload counts keep the slow trie workload (snort, idx 3)
    // from dominating the test's runtime.
    const std::size_t counts[] = {150, 120, 80, 32, 80};
    const std::size_t workloads = makeWorkloadFactories().size();
    ASSERT_EQ(workloads, 5u);
    for (std::size_t w = 0; w < workloads; ++w) {
        const QeiRunStats scalar = runOnce(w, counts[w], BatchConfig{});
        EXPECT_EQ(scalar.batches, 0u);
        for (int size : {8, 32}) {
            const BatchConfig b{size, BatchReorder::ByKeyLocality,
                                true};
            const QeiRunStats batched = runOnce(w, counts[w], b);
            EXPECT_EQ(batched.queries, scalar.queries);
            EXPECT_EQ(batched.mismatches, 0u)
                << "workload " << w << " batch " << size;
            EXPECT_EQ(batched.resultChecksum, scalar.resultChecksum)
                << "workload " << w << " batch " << size;
            EXPECT_GT(batched.batches, 0u);
            EXPECT_EQ(batched.batchedQueries, batched.queries);
        }
    }
}

TEST(BatchExecution, ReorderPoliciesAreFunctionallyIdentical)
{
    const QeiRunStats scalar = runOnce(1, 120, BatchConfig{});
    for (const BatchReorder reorder :
         {BatchReorder::None, BatchReorder::ByStructure,
          BatchReorder::ByKeyLocality}) {
        const BatchConfig b{8, reorder, true};
        const QeiRunStats batched = runOnce(1, 120, b);
        EXPECT_EQ(batched.resultChecksum, scalar.resultChecksum)
            << toString(reorder);
        EXPECT_EQ(batched.mismatches, 0u) << toString(reorder);
    }
}

TEST(BatchExecution, CoalescingOffStillMatchesAndCountsNoLineHits)
{
    const QeiRunStats scalar = runOnce(2, 80, BatchConfig{});
    const BatchConfig b{8, BatchReorder::ByKeyLocality, false};
    const QeiRunStats batched = runOnce(2, 80, b);
    EXPECT_EQ(batched.resultChecksum, scalar.resultChecksum);
    EXPECT_EQ(batched.batchLineHits, 0u);
}

// ---------------------------------------------------------------
// Batching x fault injection
// ---------------------------------------------------------------

TEST(BatchFaults, RecoveryReachesFaultFreeScalarChecksum)
{
    const QeiRunStats clean = runOnce(0, 150, BatchConfig{});
    const BatchConfig b{8, BatchReorder::ByKeyLocality, true};
    const QeiRunStats faulted =
        runOnce(0, 150, b, "pf=0.05,bh=0.03,seed=5");
    EXPECT_GT(faulted.faultsInjected, 0u);
    EXPECT_EQ(faulted.swFallbacks, faulted.faultsInjected);
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
}

TEST(BatchFaults, InjectedFlushAbortsAndRedoesBatchMembers)
{
    const QeiRunStats clean = runOnce(0, 150, BatchConfig{});
    const BatchConfig b{8, BatchReorder::ByKeyLocality, true};
    const QeiRunStats faulted = runOnce(0, 150, b, "flush=900,seed=5");
    EXPECT_GT(faulted.faultFlushes, 0u);
    EXPECT_GT(faulted.swFallbacks, 0u)
        << "flushed batch members must be redone in software";
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
}

// ---------------------------------------------------------------
// Matrix determinism
// ---------------------------------------------------------------

TEST(BatchMatrix, BatchedCellsAreThreadCountInvariant)
{
    MatrixOptions options;
    options.queries = 60;
    options.topologies = {Topology(SchemeConfig::coreIntegrated())};
    options.batch = BatchConfig{8, BatchReorder::ByKeyLocality, true};
    options.threads = 1;
    const auto serial =
        runWorkloadMatrix(makeWorkloadFactories(), options);
    options.threads = 8;
    const auto parallel =
        runWorkloadMatrix(makeWorkloadFactories(), options);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        for (const auto& [scheme, stats] : serial[i].schemes) {
            const auto it = parallel[i].schemes.find(scheme);
            ASSERT_NE(it, parallel[i].schemes.end());
            EXPECT_EQ(stats.cycles, it->second.cycles) << scheme;
            EXPECT_EQ(stats.resultChecksum, it->second.resultChecksum)
                << scheme;
            EXPECT_EQ(stats.batches, it->second.batches) << scheme;
            EXPECT_GT(stats.batches, 0u) << scheme;
        }
    }
}

} // namespace
