/**
 * Golden test for the benchmark `--json` path: run a small workload
 * through the same runWorkload -> toJson pipeline fig07_speedup uses
 * and validate the artifact schema against the in-memory results.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bench_util.hh"

using namespace qei;
using namespace qei::bench;

namespace {

/** One small run shared by every test in this file. */
const WorkloadRun&
goldenRun()
{
    static const WorkloadRun run = [] {
        auto workloads = makeAllWorkloads();
        return runWorkload(*workloads.front(), 400,
                           Topology::allPaper(),
                           QueryMode::Blocking, 42,
                           /*capture_stats=*/true);
    }();
    return run;
}

} // namespace

TEST(BenchJson, ParseBenchArgsRecognisesJsonFlag)
{
    char prog[] = "bench";
    char flag[] = "--json";
    char path[] = "out.json";
    char* argv1[] = {prog, flag, path};
    EXPECT_EQ(parseBenchArgs(3, argv1).jsonPath, "out.json");

    char combined[] = "--json=other.json";
    char* argv2[] = {prog, combined};
    EXPECT_EQ(parseBenchArgs(2, argv2).jsonPath, "other.json");

    char* argv3[] = {prog};
    EXPECT_TRUE(parseBenchArgs(1, argv3).jsonPath.empty());
}

TEST(BenchJson, RunIsSane)
{
    const WorkloadRun& run = goldenRun();
    EXPECT_GT(run.baseline.cycles, 0u);
    EXPECT_EQ(run.baseline.queries, 400u);
    for (const auto& name : schemeNames()) {
        ASSERT_TRUE(run.schemes.count(name)) << name;
        const QeiRunStats& s = run.schemes.at(name);
        EXPECT_EQ(s.mismatches, 0u) << name;
        EXPECT_EQ(s.queries, 400u) << name;
        EXPECT_GT(run.speedup(name), 0.0) << name;
    }
}

TEST(BenchJson, WorkloadRunSchema)
{
    const Json doc = toJson(goldenRun());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("workload").asString(), goldenRun().name);

    const Json& baseline = doc.at("baseline");
    for (const char* key :
         {"cycles", "instructions", "loads", "stores", "queries",
          "backend_stall_cycles", "frontend_stall_cycles", "ipc",
          "cycles_per_query"})
        EXPECT_TRUE(baseline.contains(key)) << key;

    const Json& schemes = doc.at("schemes");
    for (const auto& name : schemeNames()) {
        const Json& s = schemes.at(name);
        for (const char* key :
             {"cycles", "queries", "core_instructions", "mismatches",
              "exceptions", "mem_accesses", "micro_ops",
              "remote_compares", "avg_qst_occupancy",
              "max_inflight_observed", "cycles_per_query", "speedup"})
            EXPECT_TRUE(s.contains(key)) << name << "." << key;
        EXPECT_EQ(s.at("mismatches").asUint(), 0u) << name;
        EXPECT_GT(s.at("speedup").asDouble(), 0.0) << name;
    }
}

TEST(BenchJson, SpeedupsMatchTableToThreeDecimals)
{
    // The printed table rounds speedups to two or three decimals; the
    // JSON carries the raw double, so it must agree with speedupOf()
    // well past that precision.
    const WorkloadRun& run = goldenRun();
    const Json doc = toJson(run);
    for (const auto& name : schemeNames()) {
        const double json =
            doc.at("schemes").at(name).at("speedup").asDouble();
        const double expected =
            speedupOf(run.baseline, run.schemes.at(name));
        EXPECT_NEAR(json, expected, 0.0005) << name;
        EXPECT_DOUBLE_EQ(json, expected) << name;
    }
}

TEST(BenchJson, CapturedStatsAreValidDottedDumps)
{
    const WorkloadRun& run = goldenRun();
    ASSERT_EQ(run.statsJson.size(), schemeNames().size());
    for (const auto& name : schemeNames()) {
        ASSERT_TRUE(run.statsJson.count(name)) << name;
        const Json dump = Json::parse(run.statsJson.at(name));
        ASSERT_TRUE(dump.isObject()) << name;
        // The component tree always roots at "system" and always
        // exposes the first accelerator and the memory hierarchy.
        EXPECT_TRUE(dump.contains("system.accel0.queries")) << name;
        EXPECT_TRUE(dump.contains("system.accel0.qst.occupancy"))
            << name;
        EXPECT_TRUE(dump.contains("system.memory.llc_hit_rate"))
            << name;

        // Completed queries summed over every accelerator must equal
        // the run's query count.
        std::uint64_t completed = 0;
        for (const auto& [path, value] : dump.items()) {
            if (path.rfind("system.accel", 0) == 0 &&
                path.size() > 8 &&
                path.compare(path.size() - 8, 8, ".queries") == 0)
                completed += value.asUint();
        }
        EXPECT_EQ(completed, run.schemes.at(name).queries) << name;
    }
}

TEST(BenchJson, HostSelfMetricsStampSimEventRateAndCellWalls)
{
    // The report must be constructed before the simulation work so
    // its sim-event baseline brackets the run.
    BenchReport report("unit_host", BenchOptions{});
    auto workloads = makeAllWorkloads();
    const WorkloadRun run = runWorkload(
        *workloads.front(), 120, {SchemeConfig::coreIntegrated()});
    report.data()["run"] = toJson(run);
    ASSERT_TRUE(report.finish());

    const Json& host = report.data().at("host");
    EXPECT_GT(host.at("sim_events").asUint(), 0u);
    EXPECT_GT(host.at("sim_events_per_sec").asDouble(), 0.0);
    EXPECT_GT(host.at("wall_ms").asDouble(), 0.0);

    // Every per-cell host_wall_ms in the payload surfaces in the
    // top-level block, keyed by its dotted path.
    const Json& cells = host.at("cells");
    EXPECT_TRUE(cells.contains("run"));
    EXPECT_TRUE(cells.contains("run.baseline"));
    EXPECT_TRUE(cells.contains(
        "run.schemes." + SchemeConfig::coreIntegrated().name()));
    EXPECT_GT(cells.at("run.baseline").asDouble(), 0.0);
}

TEST(BenchJson, TableMirrorsIntoReport)
{
    TablePrinter table;
    table.header({"workload", "speedup"});
    table.row({"jvm", "3.1x"});

    BenchReport report("unit", BenchOptions{});
    report.setTable(table);
    const Json& root = report.data();
    EXPECT_EQ(root.at("bench").asString(), "unit");
    const Json& t = root.at("table");
    EXPECT_EQ(t.at("header").at(1).asString(), "speedup");
    EXPECT_EQ(t.at("rows").at(0).at(0).asString(), "jvm");
    // No --json path: finish() is a successful no-op.
    EXPECT_TRUE(report.finish());
}
