// B+-tree tests: bulk build invariants, reference-query correctness,
// and full QEI parity through the firmware-update path (the structure
// is NOT in the factory firmware — installing its CFA is the point).

#include <gtest/gtest.h>

#include <map>

#include "ds/bplus_tree.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

std::vector<std::pair<Key, std::uint64_t>>
makeItems(Rng& rng, std::size_t n, std::size_t key_len)
{
    std::map<Key, std::uint64_t> unique;
    while (unique.size() < n)
        unique[randomKey(rng, key_len)] = 0;
    std::vector<std::pair<Key, std::uint64_t>> items;
    std::uint64_t v = 9000;
    for (auto& [k, value] : unique) {
        (void)value;
        items.emplace_back(k, v++);
    }
    return items;
}

} // namespace

TEST(BPlusTree, ScanReturnsAllValuesInKeyOrder)
{
    World world(3);
    Rng rng(4);
    auto items = makeItems(rng, 200, 16);
    SimBPlusTree tree(world.vm, items);
    const auto values = tree.scanAll();
    ASSERT_EQ(values.size(), items.size());
    // Bulk build sorts by key; values were assigned in key order.
    for (std::size_t i = 1; i < values.size(); ++i)
        EXPECT_EQ(values[i], values[i - 1] + 1);
}

TEST(BPlusTree, HeightLogarithmic)
{
    World world(3);
    Rng rng(5);
    SimBPlusTree small(world.vm, makeItems(rng, 8, 8));
    SimBPlusTree big(world.vm, makeItems(rng, 2000, 8));
    EXPECT_EQ(small.height(), 1);
    EXPECT_GE(big.height(), 3); // fanout 8: 2000 keys ~ 4 levels
    EXPECT_LE(big.height(), 5);
}

TEST(BPlusTree, ReferenceQueryMatchesMap)
{
    World world(3);
    Rng rng(6);
    auto items = makeItems(rng, 700, 24);
    SimBPlusTree tree(world.vm, items);
    std::map<Key, std::uint64_t> reference(items.begin(), items.end());
    for (int q = 0; q < 300; ++q) {
        const Key key = q % 3 == 0
                            ? randomKey(rng, 24)
                            : items[rng.below(items.size())].first;
        const QueryTrace t = tree.query(key);
        auto it = reference.find(key);
        ASSERT_EQ(t.found, it != reference.end());
        if (t.found)
            EXPECT_EQ(t.resultValue, it->second);
    }
}

TEST(BPlusTree, FirmwareProgramValidates)
{
    const CfaProgram p = firmware::buildBPlusTree();
    EXPECT_EQ(p.name, "bplus-tree");
    EXPECT_FALSE(p.disassemble().empty());
    bool hasCompareKey = false;
    for (const auto& mi : p.states)
        hasCompareKey |= mi.op == MicroOpcode::CompareKey;
    EXPECT_TRUE(hasCompareKey);
}

class BPlusQei : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BPlusQei, AcceleratorMatchesReference)
{
    const std::size_t keyLen = GetParam();
    World world(31 + keyLen);
    // Firmware update: the factory store does not know B+-trees.
    ASSERT_EQ(world.firmware.program(kBPlusTreeType), nullptr);
    world.firmware.installProgram(kBPlusTreeType,
                                  firmware::buildBPlusTree());

    Rng rng(8);
    auto items = makeItems(rng, 500, keyLen);
    SimBPlusTree tree(world.vm, items);

    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 15;
    for (int q = 0; q < 80; ++q) {
        const Key key = q % 4 == 0
                            ? randomKey(rng, keyLen)
                            : items[rng.below(items.size())].first;
        QueryTrace trace = tree.query(key);
        QueryJob job;
        job.headerAddr = tree.headerAddr();
        job.keyAddr = tree.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(trace));
    }

    for (const auto& scheme :
         {SchemeConfig::coreIntegrated(), SchemeConfig::chaTlb(),
          SchemeConfig::deviceDirect()}) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        EXPECT_EQ(stats.mismatches, 0u)
            << scheme.name() << " keyLen=" << keyLen;
        EXPECT_EQ(stats.exceptions, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(KeyLengths, BPlusQei,
                         ::testing::Values(std::size_t{8},
                                           std::size_t{16},
                                           std::size_t{40},
                                           std::size_t{100}));

TEST(BPlusQei, FasterThanSoftwareOnWarmLlc)
{
    World world(77);
    world.firmware.installProgram(kBPlusTreeType,
                                  firmware::buildBPlusTree());
    Rng rng(9);
    auto items = makeItems(rng, 4000, 16);
    SimBPlusTree tree(world.vm, items);

    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 15;
    for (int q = 0; q < 400; ++q) {
        const Key& key = items[rng.below(items.size())].first;
        QueryTrace trace = tree.query(key);
        QueryJob job;
        job.headerAddr = tree.headerAddr();
        job.keyAddr = tree.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(trace));
    }
    const CoreRunResult base = runBaseline(world, prep);
    const QeiRunStats qei =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(qei.mismatches, 0u);
    EXPECT_GT(speedupOf(base, qei), 1.5);
}
