#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace qei;

namespace {

CacheParams
smallCache()
{
    return CacheParams{"t", 1024, 2, 3}; // 8 sets x 2 ways
}

} // namespace

TEST(Cache, MissOnCold)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x0, false));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, HitAfterFill)
{
    Cache c(smallCache());
    c.fill(0x40);
    EXPECT_TRUE(c.access(0x40, false));
    EXPECT_TRUE(c.access(0x7F, false)); // same line
}

TEST(Cache, GeometryDerived)
{
    Cache c(smallCache());
    EXPECT_EQ(c.sets(), 8u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(smallCache());
    // Three lines mapping to the same set (stride = sets*64 = 512B).
    c.fill(0x000);
    c.fill(0x200);
    EXPECT_TRUE(c.access(0x000, false)); // 0x000 MRU
    c.fill(0x400);                       // evicts 0x200
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_TRUE(c.probe(0x400));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c(smallCache());
    c.fill(0x000, /*dirty=*/true);
    c.fill(0x200);
    const CacheAccess out = c.fill(0x400);
    ASSERT_TRUE(out.writeback.has_value());
    EXPECT_EQ(*out.writeback, 0x000u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, WriteAccessSetsDirty)
{
    Cache c(smallCache());
    c.fill(0x000);
    EXPECT_TRUE(c.access(0x000, /*is_write=*/true));
    c.fill(0x200);
    const CacheAccess out = c.fill(0x400);
    EXPECT_TRUE(out.writeback.has_value());
}

TEST(Cache, FillOfPresentLineIsHit)
{
    Cache c(smallCache());
    c.fill(0x40);
    const CacheAccess out = c.fill(0x40);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache());
    c.fill(0x40);
    c.invalidate(0x40);
    EXPECT_FALSE(c.probe(0x40));
}

TEST(Cache, FlushAllEmpties)
{
    Cache c(smallCache());
    for (Addr a = 0; a < 1024; a += 64)
        c.fill(a);
    c.flushAll();
    for (Addr a = 0; a < 1024; a += 64)
        EXPECT_FALSE(c.probe(a));
}

TEST(Cache, ProbeDoesNotCount)
{
    Cache c(smallCache());
    c.probe(0x40);
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(smallCache());
    c.fill(0x40);
    c.access(0x40, false);
    c.resetStats();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_TRUE(c.probe(0x40));
}

TEST(CacheDeath, NonPowerOfTwoSetsPanics)
{
    EXPECT_DEATH(Cache(CacheParams{"bad", 192, 1, 1}),
                 "power of two");
}

// Property sweep: for several geometries, a working set equal to the
// capacity must fully hit on a second pass (true LRU, no thrash).
class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{
};

TEST_P(CacheGeometry, CapacityWorkingSetFullyHits)
{
    const auto [size, ways] = GetParam();
    Cache c(CacheParams{"p", size, ways, 1});
    const std::uint64_t lines = size / kCacheLineBytes;
    for (std::uint64_t i = 0; i < lines; ++i)
        c.fill(i * kCacheLineBytes);
    for (std::uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * kCacheLineBytes, false));
    EXPECT_EQ(c.evictions(), 0u);
}

TEST_P(CacheGeometry, OverCapacityEvicts)
{
    const auto [size, ways] = GetParam();
    Cache c(CacheParams{"p", size, ways, 1});
    const std::uint64_t lines = size / kCacheLineBytes;
    for (std::uint64_t i = 0; i < lines * 2; ++i)
        c.fill(i * kCacheLineBytes);
    EXPECT_EQ(c.evictions(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::pair<std::uint64_t, std::uint32_t>{1024, 1},
                      std::pair<std::uint64_t, std::uint32_t>{1024, 2},
                      std::pair<std::uint64_t, std::uint32_t>{4096, 4},
                      std::pair<std::uint64_t, std::uint32_t>{32768, 8},
                      std::pair<std::uint64_t, std::uint32_t>{65536,
                                                              16}));
