#include <gtest/gtest.h>

#include "core/core_model.hh"
#include "vm/tlb.hh"

using namespace qei;

namespace {

struct CoreHarness
{
    CoreHarness()
        : chip(defaultChip()), mem(1 << 28), vm(mem),
          hierarchy(chip.memory), mmu(vm, chip.mmu)
    {
        base = vm.alloc(1 << 20, kCacheLineBytes);
    }

    /** A trace of @p n loads, dependent or independent. */
    QueryTrace
    makeTrace(int n, bool dependent, std::uint32_t instr_each = 10)
    {
        QueryTrace t;
        for (int i = 0; i < n; ++i) {
            MemTouch touch;
            // Distinct lines, same region.
            touch.vaddr =
                base + static_cast<Addr>(i) * 4 * kCacheLineBytes;
            touch.dependsOnPrev = dependent;
            touch.computeLatency = 1;
            touch.instrBefore = instr_each;
            t.touches.push_back(touch);
        }
        t.found = true;
        return t;
    }

    CoreRunResult
    run(const std::vector<QueryTrace>& traces,
        const RoiProfile& profile = {})
    {
        CoreModel model(0, chip.core, hierarchy, mmu);
        return model.runQueries(traces, profile);
    }

    ChipConfig chip;
    SimMemory mem;
    VirtualMemory vm;
    MemoryHierarchy hierarchy;
    Mmu mmu;
    Addr base = 0;
};

} // namespace

TEST(CoreModelT, CountsInstructionsAndLoads)
{
    CoreHarness h;
    RoiProfile profile;
    profile.nonQueryInstrPerOp = 20;
    const CoreRunResult r = h.run({h.makeTrace(5, true)}, profile);
    EXPECT_EQ(r.queries, 1u);
    EXPECT_EQ(r.loads, 5u);
    EXPECT_EQ(r.instructions, 20u + 5u * 11u);}

TEST(CoreModelT, DependentLoadsSerialise)
{
    CoreHarness h;
    const CoreRunResult serial = h.run({h.makeTrace(16, true)});

    CoreHarness fresh;
    const CoreRunResult parallel =
        fresh.run({fresh.makeTrace(16, false)});
    EXPECT_GT(serial.cycles, parallel.cycles * 2);}

TEST(CoreModelT, IpcNeverExceedsWidth)
{
    CoreHarness h;
    std::vector<QueryTrace> traces(20, h.makeTrace(8, false, 40));
    const CoreRunResult r = h.run(traces);
    EXPECT_LE(r.ipc(), static_cast<double>(h.chip.core.issueWidth));
    EXPECT_GT(r.ipc(), 0.0);}

TEST(CoreModelT, RobLimitsIndependentOverlap)
{
    CoreHarness h;
    // Many independent loads with huge instruction padding: the ROB
    // window (224) only covers a few, so cycles scale with loads.
    std::vector<QueryTrace> traces(4, h.makeTrace(32, false, 200));
    const CoreRunResult wide = h.run(traces);

    CoreHarness fresh;
    std::vector<QueryTrace> tight(4, fresh.makeTrace(32, false, 1));
    const CoreRunResult narrow = fresh.run(tight);
    // With less padding the window covers more loads -> fewer cycles.
    EXPECT_LT(narrow.cycles, wide.cycles);}

TEST(CoreModelT, MispredictsSerialiseAcrossQueries)
{
    CoreHarness h;
    // Two streams of two queries each; the second adds a mispredicted
    // data-dependent branch at the end of each query.
    std::vector<QueryTrace> clean(8, h.makeTrace(4, true));
    const CoreRunResult fast = h.run(clean);

    CoreHarness fresh;
    std::vector<QueryTrace> flaky(8, fresh.makeTrace(4, true));
    for (auto& t : flaky) {
        t.mispredictsAfter = 1;
        t.branchesAfter = 1;
    }
    const CoreRunResult slow = fresh.run(flaky);
    EXPECT_GT(slow.cycles, fast.cycles);
    EXPECT_GT(slow.frontendStallCycles, fast.frontendStallCycles);}

TEST(CoreModelT, TopDownFractionsBounded)
{
    CoreHarness h;
    std::vector<QueryTrace> traces(10, h.makeTrace(8, true, 20));
    RoiProfile profile;
    profile.frontendStallPerInstr = 0.05;
    const CoreRunResult r = h.run(traces, profile);
    const int w = h.chip.core.issueWidth;
    EXPECT_GE(r.retiringFraction(w), 0.0);
    EXPECT_LE(r.retiringFraction(w), 1.0);
    EXPECT_GE(r.frontendBoundFraction(w), 0.0);
    EXPECT_GE(r.backendBoundFraction(w), 0.0);}

TEST(CoreModelT, FrontendStallSlowsRun)
{
    CoreHarness h;
    std::vector<QueryTrace> traces(10, h.makeTrace(4, true, 30));
    RoiProfile fastProfile;
    const CoreRunResult fast = h.run(traces, fastProfile);

    CoreHarness fresh;
    std::vector<QueryTrace> traces2(10, fresh.makeTrace(4, true, 30));
    RoiProfile slowProfile;
    slowProfile.frontendStallPerInstr = 0.5;
    const CoreRunResult slow = fresh.run(traces2, slowProfile);
    EXPECT_GT(slow.cycles, fast.cycles);}

TEST(CoreModelT, ComputeLatencyDelaysIssue)
{
    CoreHarness h;
    QueryTrace quick = h.makeTrace(1, false);
    quick.touches[0].computeLatency = 0;

    CoreHarness fresh;
    QueryTrace hashed = fresh.makeTrace(1, false);
    hashed.touches[0].computeLatency = 100;

    const CoreRunResult a = h.run({quick});
    const CoreRunResult b = fresh.run({hashed});
    EXPECT_GE(b.cycles, a.cycles + 90);}

TEST(CoreModelT, ResetClearsState)
{
    CoreHarness h;
    CoreModel model(0, h.chip.core, h.hierarchy, h.mmu);
    model.runQueries({h.makeTrace(4, true)}, {});
    model.reset();
    const CoreRunResult r = model.runQueries({h.makeTrace(4, true)}, {});
    EXPECT_EQ(r.queries, 1u);}
