#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace qei;

TEST(Dram, BaseLatencyWhenIdle)
{
    Dram dram;
    const Cycles lat = dram.access(0, 0);
    // Service latency + line transfer time.
    const Cycles transfer = static_cast<Cycles>(
        64.0 / dram.params().bytesPerCycle + 0.5);
    EXPECT_EQ(lat, dram.params().serviceLatency + transfer);
}

TEST(Dram, SameChannelQueues)
{
    Dram dram;
    const Cycles a = dram.access(0, 0);
    // Same line address -> same channel, immediately after.
    const Cycles b = dram.access(0, 0);
    EXPECT_GT(b, a);
}

TEST(Dram, DifferentChannelsDoNotQueue)
{
    Dram dram;
    const Cycles a = dram.access(0 * kCacheLineBytes, 0);
    const Cycles b = dram.access(1 * kCacheLineBytes, 0);
    EXPECT_EQ(a, b);
}

TEST(Dram, QueueDrainsOverTime)
{
    Dram dram;
    dram.access(0, 0);
    const Cycles later = dram.access(0, 100000);
    const Cycles transfer = static_cast<Cycles>(
        64.0 / dram.params().bytesPerCycle + 0.5);
    EXPECT_EQ(later, dram.params().serviceLatency + transfer);
}

TEST(Dram, CountsAccessesAndBytes)
{
    Dram dram;
    dram.access(0, 0);
    dram.access(64, 0, 128);
    EXPECT_EQ(dram.accesses(), 2u);
    EXPECT_EQ(dram.totalBytes(), 192u);
}

TEST(Dram, ResetClearsState)
{
    Dram dram;
    dram.access(0, 0);
    dram.access(0, 0);
    dram.reset();
    EXPECT_EQ(dram.accesses(), 0u);
    const Cycles transfer = static_cast<Cycles>(
        64.0 / dram.params().bytesPerCycle + 0.5);
    EXPECT_EQ(dram.access(0, 0),
              dram.params().serviceLatency + transfer);
}
