// Unit + property tests for the in-sim-memory data structures: every
// structure is validated functionally against a std::map reference
// over randomized key sets, parameterized over key lengths.

#include <gtest/gtest.h>

#include <map>

#include "ds/bst.hh"
#include "ds/chained_hash.hh"
#include "ds/cuckoo_hash.hh"
#include "ds/linked_list.hh"
#include "ds/lsh.hh"
#include "ds/skip_list.hh"
#include "ds/trie.hh"
#include "ds/tuple_space.hh"

using namespace qei;

namespace {

struct DsFixture
{
    DsFixture() : mem(1ULL << 30), vm(mem) {}

    std::vector<std::pair<Key, std::uint64_t>>
    makeItems(std::size_t n, std::size_t key_len, std::uint64_t seed)
    {
        Rng rng(seed);
        std::map<Key, std::uint64_t> unique;
        while (unique.size() < n)
            unique[randomKey(rng, key_len)] = 0;
        std::vector<std::pair<Key, std::uint64_t>> items;
        std::uint64_t v = 1000;
        for (auto& [k, value] : unique) {
            (void)value;
            items.emplace_back(k, v++);
        }
        // Shuffle so BSTs stay balanced-ish.
        Rng shuffler(seed ^ 0x5555);
        for (std::size_t i = items.size(); i > 1; --i)
            std::swap(items[i - 1], items[shuffler.below(i)]);
        return items;
    }

    SimMemory mem;
    VirtualMemory vm;
};

/** Shared property check: queries agree with the reference map. */
template <typename Ds>
void
checkAgainstReference(
    Ds& ds, const std::vector<std::pair<Key, std::uint64_t>>& items,
    std::size_t key_len, std::uint64_t seed)
{
    std::map<Key, std::uint64_t> reference(items.begin(), items.end());
    Rng rng(seed);
    for (int q = 0; q < 200; ++q) {
        const Key key = q % 3 == 0
                            ? randomKey(rng, key_len)
                            : items[rng.below(items.size())].first;
        const QueryTrace trace = ds.query(key);
        auto it = reference.find(key);
        ASSERT_EQ(trace.found, it != reference.end());
        if (trace.found)
            EXPECT_EQ(trace.resultValue, it->second);
        EXPECT_FALSE(trace.touches.empty());
    }
}

} // namespace

class DsKeyLen : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DsKeyLen, LinkedListMatchesReference)
{
    DsFixture f;
    auto items = f.makeItems(48, GetParam(), 1);
    SimLinkedList ll(f.vm, items);
    EXPECT_EQ(ll.size(), items.size());
    checkAgainstReference(ll, items, GetParam(), 11);
}

TEST_P(DsKeyLen, BstMatchesReference)
{
    DsFixture f;
    auto items = f.makeItems(300, GetParam(), 2);
    SimBst bst(f.vm, items);
    EXPECT_GT(bst.averageDepth(), 1.0);
    checkAgainstReference(bst, items, GetParam(), 12);
}

TEST_P(DsKeyLen, SkipListMatchesReference)
{
    DsFixture f;
    auto items = f.makeItems(300, GetParam(), 3);
    SimSkipList sl(f.vm, items);
    checkAgainstReference(sl, items, GetParam(), 13);
}

TEST_P(DsKeyLen, ChainedHashMatchesReference)
{
    DsFixture f;
    auto items = f.makeItems(400, GetParam(), 4);
    SimChainedHash ch(f.vm, items, 128);
    EXPECT_GT(ch.averageChainLength(), 1.0);
    checkAgainstReference(ch, items, GetParam(), 14);
}

TEST_P(DsKeyLen, CuckooHashMatchesReference)
{
    DsFixture f;
    auto items = f.makeItems(400, GetParam(), 5);
    SimCuckooHash cuckoo(f.vm, 128, static_cast<std::uint32_t>(
                                        GetParam()));
    std::vector<std::pair<Key, std::uint64_t>> installed;
    for (const auto& [k, v] : items) {
        if (cuckoo.insert(k, v))
            installed.emplace_back(k, v);
    }
    EXPECT_GT(installed.size(), items.size() / 2);
    checkAgainstReference(cuckoo, installed, GetParam(), 15);
}

INSTANTIATE_TEST_SUITE_P(KeyLengths, DsKeyLen,
                         ::testing::Values(8, 16, 20, 24, 40, 64, 100));

TEST(LinkedList, PreservesInsertionOrderFromRoot)
{
    DsFixture f;
    auto items = f.makeItems(5, 8, 7);
    SimLinkedList ll(f.vm, items);
    Addr node = ll.rootAddr();
    for (const auto& [key, value] : items) {
        ASSERT_NE(node, kNullAddr);
        EXPECT_EQ(loadKey(f.vm, node + 16, 8), key);
        EXPECT_EQ(f.vm.read<std::uint64_t>(node + 8), value);
        node = f.vm.read<std::uint64_t>(node);
    }
    EXPECT_EQ(node, kNullAddr);
}

TEST(Bst, OverwriteUpdatesValue)
{
    DsFixture f;
    auto items = f.makeItems(20, 8, 8);
    items.push_back(items.front());
    items.back().second = 9999;
    SimBst bst(f.vm, items);
    const QueryTrace t = bst.query(items.front().first);
    EXPECT_TRUE(t.found);
    EXPECT_EQ(t.resultValue, 9999u);
}

TEST(SkipList, HeaderPublishesForwardBase)
{
    DsFixture f;
    auto items = f.makeItems(50, 24, 9);
    SimSkipList sl(f.vm, items);
    const StructHeader h =
        StructHeader::readFrom(f.vm, sl.headerAddr());
    EXPECT_EQ(h.type, StructType::SkipList);
    EXPECT_EQ(h.aux0, sl.forwardBase());
    EXPECT_EQ(h.aux1,
              static_cast<std::uint64_t>(SimSkipList::kMaxHeight - 1));
}

TEST(SkipList, TraversalVisitsFewerNodesThanSize)
{
    DsFixture f;
    auto items = f.makeItems(512, 16, 10);
    SimSkipList sl(f.vm, items);
    Rng rng(3);
    double touches = 0;
    for (int i = 0; i < 50; ++i) {
        touches += static_cast<double>(
            sl.query(items[rng.below(items.size())].first)
                .touches.size());
    }
    EXPECT_LT(touches / 50.0, 120.0); // O(log n), not O(n)
}

TEST(CuckooHash, LoadFactorAndRejection)
{
    DsFixture f;
    SimCuckooHash cuckoo(f.vm, 16, 16); // 128 slots
    Rng rng(11);
    int accepted = 0;
    for (int i = 0; i < 200; ++i)
        accepted += cuckoo.insert(randomKey(rng, 16), i) ? 1 : 0;
    EXPECT_GT(cuckoo.loadFactor(), 0.5);
    EXPECT_LE(cuckoo.loadFactor(), 1.0);
    EXPECT_LT(accepted, 200); // some inserts must fail at high load
}

TEST(CuckooHash, HeaderDescribesTable)
{
    DsFixture f;
    SimCuckooHash cuckoo(f.vm, 64, 16);
    const StructHeader h =
        StructHeader::readFrom(f.vm, cuckoo.headerAddr());
    EXPECT_EQ(h.type, StructType::CuckooHash);
    EXPECT_EQ(h.aux0, 63u);
    EXPECT_EQ(h.subtype, SimCuckooHash::kEntriesPerBucket);
}

TEST(Trie, CountsOverlappingMatches)
{
    DsFixture f;
    SimTrie trie(f.vm, {"he", "she", "his", "hers"});
    // The classic Aho-Corasick example: "ushers" contains
    // "she", "he", "hers" -> 3 matches.
    std::vector<std::uint8_t> input;
    for (char c : std::string("ushers"))
        input.push_back(static_cast<std::uint8_t>(c));
    const QueryTrace t = trie.match(input);
    EXPECT_EQ(t.resultValue, 3u);
}

TEST(Trie, NoMatchesInCleanText)
{
    DsFixture f;
    SimTrie trie(f.vm, {"xyzzy", "plugh"});
    std::vector<std::uint8_t> input;
    for (char c : std::string("aaaaabbbbbccccc"))
        input.push_back(static_cast<std::uint8_t>(c));
    EXPECT_EQ(trie.match(input).resultValue, 0u);
}

TEST(Trie, MatchesAgainstNaiveScan)
{
    DsFixture f;
    const std::vector<std::string> words{"abc", "bca", "aab", "ca",
                                         "abca"};
    SimTrie trie(f.vm, words);
    Rng rng(5);
    for (int round = 0; round < 20; ++round) {
        std::string text;
        for (int i = 0; i < 64; ++i)
            text.push_back(static_cast<char>('a' + rng.below(3)));
        std::uint64_t naive = 0;
        for (const auto& w : words) {
            for (std::size_t pos = 0;
                 (pos = text.find(w, pos)) != std::string::npos; ++pos)
                ++naive;
        }
        std::vector<std::uint8_t> input(text.begin(), text.end());
        EXPECT_EQ(trie.match(input).resultValue, naive)
            << "text: " << text;
    }
}

TEST(Trie, NodeCountGrowsWithDictionary)
{
    DsFixture f;
    SimTrie small(f.vm, {"a"});
    SimTrie big(f.vm, {"abcdef", "abcxyz", "qrstuv"});
    EXPECT_GT(big.nodeCount(), small.nodeCount());
}

TEST(TupleSpace, ClassifiesAcrossTuples)
{
    DsFixture f;
    Rng rng(21);
    SimTupleSpace space(f.vm, 4, 256, 16, rng);
    for (int t = 0; t < space.tupleCount(); ++t) {
        const Key packet = space.sampleInstalledKey(t, rng);
        const auto traces = space.classify(packet);
        ASSERT_EQ(traces.size(), 4u);
        EXPECT_TRUE(traces[static_cast<std::size_t>(t)].found)
            << "tuple " << t;
    }
}

TEST(TupleSpace, RandomPacketRarelyMatches)
{
    DsFixture f;
    Rng rng(22);
    SimTupleSpace space(f.vm, 3, 128, 16, rng);
    int matches = 0;
    for (int i = 0; i < 50; ++i) {
        for (const auto& t : space.classify(randomKey(rng, 16)))
            matches += t.found ? 1 : 0;
    }
    EXPECT_LT(matches, 3);
}

TEST(Lsh, ExactKeyFoundInEveryTable)
{
    DsFixture f;
    Rng rng(31);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 300; ++i)
        items.emplace_back(randomKey(rng, 20), 7000 + i);
    SimLsh lsh(f.vm, 6, items, rng);
    for (int probe = 0; probe < 20; ++probe) {
        const auto& [key, value] = items[rng.below(items.size())];
        const auto traces = lsh.probeAll(key);
        ASSERT_EQ(traces.size(), 6u);
        for (const auto& t : traces) {
            EXPECT_TRUE(t.found);
            EXPECT_EQ(t.resultValue, value);
        }
    }
}

TEST(Lsh, ProjectionsDifferAcrossTables)
{
    DsFixture f;
    Rng rng(32);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 50; ++i)
        items.emplace_back(randomKey(rng, 20), i);
    SimLsh lsh(f.vm, 3, items, rng);
    const Key key = items[0].first;
    EXPECT_NE(lsh.project(key, 0), lsh.project(key, 1));
    EXPECT_NE(lsh.project(key, 1), lsh.project(key, 2));
}
