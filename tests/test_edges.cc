// Edge cases and cross-cutting invariants that do not fit a single
// module suite: scheme presets, table rendering, trie/skip-list
// corner inputs, event-queue stress ordering, and figure-level
// directional claims.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/table_printer.hh"
#include "ds/chained_hash.hh"
#include "ds/skip_list.hh"
#include "ds/trie.hh"
#include "qei/scheme.hh"
#include "sim/event_queue.hh"
#include "workloads/workload.hh"

using namespace qei;

TEST(SchemePresets, MatchPaperConfiguration)
{
    const auto all = SchemeConfig::allSchemes();
    ASSERT_EQ(all.size(), 5u);

    const SchemeConfig& chaTlb = all[0];
    EXPECT_EQ(chaTlb.translate, TranslatePath::DedicatedTlb);
    EXPECT_EQ(chaTlb.qstEntries, 10);
    EXPECT_EQ(chaTlb.accelerators, 24);
    EXPECT_EQ(chaTlb.dedicatedTlbEntries, 1024);

    const SchemeConfig& noTlb = all[1];
    EXPECT_EQ(noTlb.translate, TranslatePath::CoreMmuRemote);

    const SchemeConfig& direct = all[2];
    EXPECT_EQ(direct.qstEntries, 240); // 10 x 24 cores
    EXPECT_EQ(direct.accelerators, 1);
    EXPECT_GE(direct.submitLatency, 100u); // Tab. I: 100~500

    const SchemeConfig& indirect = all[3];
    EXPECT_GE(indirect.dataOverhead, 100u);

    const SchemeConfig& coreInt = all[4];
    EXPECT_TRUE(coreInt.perCore);
    EXPECT_TRUE(coreInt.remoteComparators);
    EXPECT_EQ(coreInt.translate, TranslatePath::CoreL2Tlb);
}

TEST(SchemePresets, NamesAreDistinct)
{
    std::vector<std::string> names;
    for (const auto& s : SchemeConfig::allSchemes())
        names.push_back(s.name());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(TablePrinter, AlignsColumnsAndRules)
{
    TablePrinter t("title");
    t.header({"a", "long-header", "c"});
    t.row({"1", "2", "3"});
    t.row({"wide-cell", "x", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("long-header"), std::string::npos);
    // Every rendered line between rules has equal width.
    std::size_t firstLen = std::string::npos;
    std::size_t pos = out.find('\n') + 1; // skip title
    while (pos < out.size()) {
        const std::size_t end = out.find('\n', pos);
        const std::size_t len = end - pos;
        if (firstLen == std::string::npos)
            firstLen = len;
        EXPECT_EQ(len, firstLen);
        pos = end + 1;
    }
}

TEST(TablePrinter, Formatters)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 3), "3.142");
    EXPECT_EQ(TablePrinter::speedup(2.0), "2.00x");
    EXPECT_EQ(TablePrinter::percent(0.125), "12.5%");
}

TEST(TablePrinterDeath, MismatchedRowDies)
{
    TablePrinter t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "cells");
}

TEST(TrieEdges, EmptyInputMatchesNothing)
{
    World world(1);
    SimTrie trie(world.vm, {"abc"});
    EXPECT_EQ(trie.match({}).resultValue, 0u);
}

TEST(TrieEdges, RepeatedPatternOverlaps)
{
    World world(1);
    SimTrie trie(world.vm, {"aa"});
    std::vector<std::uint8_t> input(6, 'a'); // "aaaaaa": 5 overlaps
    EXPECT_EQ(trie.match(input).resultValue, 5u);
}

TEST(TrieEdges, DuplicateKeywordCountsTwice)
{
    World world(1);
    SimTrie trie(world.vm, {"ab", "ab"});
    std::vector<std::uint8_t> input{'a', 'b'};
    EXPECT_EQ(trie.match(input).resultValue, 2u);
}

TEST(TrieEdges, KeywordIsPrefixOfAnother)
{
    World world(1);
    SimTrie trie(world.vm, {"ab", "abc"});
    std::vector<std::uint8_t> input{'x', 'a', 'b', 'c', 'x'};
    EXPECT_EQ(trie.match(input).resultValue, 2u);
}

TEST(SkipListInvariants, LeafChainIsSorted)
{
    World world(2);
    Rng rng(3);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 300; ++i)
        items.emplace_back(randomKey(rng, 16), i);
    SimSkipList sl(world.vm, items);

    // Walk level 0 from the head: keys must be strictly increasing.
    Addr node = sl.headAddr();
    Key prev;
    int count = 0;
    while (true) {
        const Addr next = world.vm.read<std::uint64_t>(
            node + sl.forwardBase());
        if (next == kNullAddr)
            break;
        const Key k = loadKey(world.vm, next + 16, sl.keyLen());
        if (count > 0) {
            EXPECT_LT(compareKeys(prev, k), 0);
        }
        prev = k;
        node = next;
        ++count;
    }
    EXPECT_EQ(static_cast<std::size_t>(count), items.size());
}

TEST(EventQueueStress, ThousandsOfRandomEventsRunInOrder)
{
    EventQueue q;
    Rng rng(9);
    std::vector<Cycles> fired;
    for (int i = 0; i < 5000; ++i) {
        const Cycles when = rng.below(10000);
        q.scheduleAt(when, [&fired, &q] { fired.push_back(q.now()); });
    }
    q.run();
    EXPECT_EQ(fired.size(), 5000u);
    EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(FigureInvariants, DeviceIndirectWorstBlockingScheme)
{
    World world(50);
    Rng rng(5);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 300; ++i)
        items.emplace_back(randomKey(rng, 16), i);
    SimChainedHash table(world.vm, items, 128);
    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 15;
    for (int qn = 0; qn < 50; ++qn) {
        const Key& key = items[rng.below(items.size())].first;
        QueryTrace t = table.query(key);
        QueryJob job;
        job.headerAddr = table.headerAddr();
        job.keyAddr = table.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = t.found;
        job.expectValue = t.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(t));
    }

    Cycles worst = 0;
    std::string worstName;
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        if (stats.cycles > worst) {
            worst = stats.cycles;
            worstName = scheme.name();
        }
    }
    EXPECT_EQ(worstName, "Device-indirect");
}

TEST(FigureInvariants, EndToEndGainBelowRoiSpeedup)
{
    // Amdahl sanity used by fig09: end-to-end gain must be below the
    // ROI speedup for any roiFraction < 1.
    auto gain = [](double f, double s) {
        return 1.0 / ((1.0 - f) + f / s) - 1.0;
    };
    EXPECT_LT(gain(0.44, 8.0) + 1.0, 8.0);
    EXPECT_NEAR(gain(1.0, 8.0) + 1.0, 8.0, 1e-9);
    EXPECT_NEAR(gain(0.0, 8.0), 0.0, 1e-9);
}
