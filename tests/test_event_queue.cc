#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace qei;

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(20, [&] { order.push_back(2); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(30, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleFifoBySequence)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBeatsSequence)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); },
               EventPriority::CfaTick);
    q.schedule(5, [&] { order.push_back(0); },
               EventPriority::MemoryResponse);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue q;
    std::vector<Cycles> times;
    q.schedule(1, [&] {
        times.push_back(q.now());
        q.schedule(4, [&] { times.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(times, (std::vector<Cycles>{1, 5}));
}

TEST(EventQueue, ZeroDelayRunsSameCycle)
{
    EventQueue q;
    bool ran = false;
    q.schedule(3, [&] { q.schedule(0, [&] { ran = true; }); });
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 3u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] { ++count; });
    q.schedule(10, [&] { ++count; });
    q.schedule(15, [&] { ++count; });
    q.runUntil(10);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunWithBudgetStops)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] { ++count; });
    q.schedule(500, [&] { ++count; });
    q.run(100);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, ResetDropsEventsAndClock)
{
    EventQueue q;
    q.schedule(5, [] {});
    q.run();
    q.schedule(50, [] {});
    q.reset();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, ReturnsExecutedCount)
{
    EventQueue q;
    for (int i = 0; i < 9; ++i)
        q.schedule(static_cast<Cycles>(i), [] {});
    EXPECT_EQ(q.run(), 9u);
}

TEST(EventQueueDeath, SchedulingIntoPastPanics)
{
    EventQueue q;
    q.schedule(10, [&q] {
        // now == 10; absolute 5 is in the past.
        q.scheduleAt(5, [] {});
    });
    EXPECT_DEATH(q.run(), "scheduling into the past");
}
