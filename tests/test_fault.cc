// Robustness subsystem tests: fault-spec parsing, deterministic
// injection, daemon-event clock semantics, watchdog livelock
// detection, the software-fallback recovery invariant, and the strict
// bench argument parser.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "ds/chained_hash.hh"
#include "fault/fault_config.hh"
#include "fault/fault_injector.hh"
#include "sim/event_queue.hh"
#include "sim/watchdog.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

// ---------------------------------------------------------------
// Fault-spec grammar
// ---------------------------------------------------------------

TEST(FaultSpec, ParsesEveryKey)
{
    const FaultConfig c = parseFaultSpec(
        "pf=0.05,bh=0.01,fw=0.02,flush=20000,qst=4,seed=7,"
        "epoch=5000,strikes=3,pf@3,bh@9,fw@11");
    EXPECT_DOUBLE_EQ(c.pageFaultRate, 0.05);
    EXPECT_DOUBLE_EQ(c.badHeaderRate, 0.01);
    EXPECT_DOUBLE_EQ(c.firmwareFaultRate, 0.02);
    EXPECT_EQ(c.flushPeriod, 20000u);
    EXPECT_EQ(c.qstEntriesOverride, 4);
    EXPECT_EQ(c.seed, 7u);
    EXPECT_EQ(c.watchdogEpoch, 5000u);
    EXPECT_EQ(c.watchdogStrikes, 3);
    ASSERT_EQ(c.pageFaultQueries.size(), 1u);
    EXPECT_EQ(c.pageFaultQueries[0], 3u);
    ASSERT_EQ(c.badHeaderQueries.size(), 1u);
    EXPECT_EQ(c.badHeaderQueries[0], 9u);
    ASSERT_EQ(c.firmwareFaultQueries.size(), 1u);
    EXPECT_EQ(c.firmwareFaultQueries[0], 11u);
    EXPECT_TRUE(c.any());
}

TEST(FaultSpec, EmptySpecDisablesEverything)
{
    const FaultConfig c = parseFaultSpec("");
    EXPECT_FALSE(c.any());
    // Watchdog parameters alone don't make a run "faulted".
    const FaultConfig d = parseFaultSpec("epoch=1000,strikes=2");
    EXPECT_FALSE(d.any());
}

TEST(FaultSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_EXIT(parseFaultSpec("zz=1"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(parseFaultSpec("pf=1.5"),
                ::testing::ExitedWithCode(1), "rate in");
    EXPECT_EXIT(parseFaultSpec("flush"),
                ::testing::ExitedWithCode(1), "not key=value");
    EXPECT_EXIT(parseFaultSpec("xy@4"),
                ::testing::ExitedWithCode(1), "targeted fault");
    EXPECT_EXIT(parseFaultSpec("epoch=0"),
                ::testing::ExitedWithCode(1), "epoch");
}

TEST(FaultSpec, DescribeRoundsTrip)
{
    EXPECT_EQ(describeFaults(FaultConfig{}), "none");
    const std::string text =
        describeFaults(parseFaultSpec("pf=0.05,flush=200,qst=2"));
    EXPECT_NE(text.find("pf=0.050"), std::string::npos);
    EXPECT_NE(text.find("flush=200"), std::string::npos);
    EXPECT_NE(text.find("qst=2"), std::string::npos);
}

// ---------------------------------------------------------------
// Deterministic injection decisions
// ---------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsArePureInSeedAndQueryId)
{
    const FaultConfig config =
        parseFaultSpec("pf=0.05,bh=0.03,fw=0.02,seed=123");
    FaultInjector a(config);
    FaultInjector b(config);
    int faulted = 0;
    for (std::uint64_t q = 0; q < 5000; ++q) {
        EXPECT_EQ(a.queryFault(q), b.queryFault(q)) << "query " << q;
        faulted += a.queryFault(q) != FaultKind::None;
    }
    // 10% combined rate over 5000 draws: a deterministic count, but
    // it must land near the configured rate.
    EXPECT_GT(faulted, 250);
    EXPECT_LT(faulted, 1000);

    // A different seed must reshuffle which queries fault.
    FaultInjector c(parseFaultSpec("pf=0.05,bh=0.03,fw=0.02,seed=124"));
    int differs = 0;
    for (std::uint64_t q = 0; q < 5000; ++q)
        differs += a.queryFault(q) != c.queryFault(q);
    EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, TargetedListsWinOverRates)
{
    FaultInjector inj(parseFaultSpec("pf@5,bh@6,fw@7"));
    EXPECT_EQ(inj.queryFault(5), FaultKind::PageFault);
    EXPECT_EQ(inj.queryFault(6), FaultKind::BadHeader);
    EXPECT_EQ(inj.queryFault(7), FaultKind::FirmwareFault);
    EXPECT_EQ(inj.queryFault(4), FaultKind::None);
    EXPECT_EQ(inj.queryFault(8), FaultKind::None);
}

TEST(FaultInjectorTest, UnitRatePartitionsEveryQuery)
{
    FaultInjector inj(parseFaultSpec("pf=0.4,bh=0.3,fw=0.3"));
    int pf = 0, bh = 0, fw = 0;
    for (std::uint64_t q = 0; q < 2000; ++q) {
        switch (inj.queryFault(q)) {
          case FaultKind::PageFault: ++pf; break;
          case FaultKind::BadHeader: ++bh; break;
          case FaultKind::FirmwareFault: ++fw; break;
          case FaultKind::None:
            FAIL() << "total rate 1.0 left query " << q << " unfaulted";
        }
    }
    EXPECT_GT(pf, 0);
    EXPECT_GT(bh, 0);
    EXPECT_GT(fw, 0);
}

// ---------------------------------------------------------------
// Daemon events: housekeeping must not drag the simulated clock
// ---------------------------------------------------------------

TEST(DaemonEvents, TrailingDaemonDoesNotAdvanceNow)
{
    EventQueue q;
    bool realRan = false;
    bool daemonRan = false;
    q.schedule(10, [&] { realRan = true; });
    q.scheduleDaemon(500, [&] { daemonRan = true; });
    EXPECT_EQ(q.daemons(), 1u);
    EXPECT_EQ(q.pendingWork(), 1u);
    q.run();
    // The daemon executed (no callback may outlive the run region)
    // but the observable clock stopped at the last real event.
    EXPECT_TRUE(realRan);
    EXPECT_TRUE(daemonRan);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_EQ(q.daemons(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(DaemonEvents, DaemonRearmsWhileRealWorkPending)
{
    EventQueue q;
    int fires = 0;
    // Periodic daemon that follows the contract: re-arm only while
    // real work is pending.
    std::function<void()> tick = [&] {
        ++fires;
        if (q.pendingWork() > 0)
            q.scheduleDaemon(5, [&] { tick(); });
    };
    q.scheduleDaemon(5, [&] { tick(); });
    for (Cycles at : {Cycles{3}, Cycles{8}, Cycles{13}})
        q.scheduleAt(at, [] {});
    q.run();
    EXPECT_GE(fires, 2);
    EXPECT_EQ(q.now(), 13u);
    EXPECT_EQ(q.daemons(), 0u);
}

// ---------------------------------------------------------------
// Forward-progress watchdog
// ---------------------------------------------------------------

/** A retry storm: an event that re-schedules itself forever without
 *  ever retiring a query. */
struct Spinner
{
    EventQueue& q;
    sim::Watchdog* dog = nullptr;
    int retire = 0; ///< calls noteProgress() this many times, then not
    void
    pump()
    {
        if (dog != nullptr && retire > 0) {
            --retire;
            dog->noteProgress();
        }
        q.schedule(10, [this] { pump(); });
    }
};

TEST(WatchdogDeathTest, PanicsOnLivelock)
{
    EventQueue q;
    sim::Watchdog dog(q, {100, 2});
    dog.setDump([] { return std::string("spinner state"); });
    dog.arm();
    Spinner spin{q};
    spin.pump();
    EXPECT_DEATH(q.run(), "watchdog: no query retired");
}

TEST(WatchdogTest, QuietWhileProgressIsMade)
{
    EventQueue q;
    sim::Watchdog dog(q, {100, 2});
    dog.arm();
    EXPECT_TRUE(dog.armed());
    // 60 self-rescheduling steps, each reporting progress; the run
    // spans ~600 cycles = several epochs, none of them silent.
    struct Stepper
    {
        EventQueue& q;
        sim::Watchdog& dog;
        int left;
        void
        step()
        {
            dog.noteProgress();
            if (--left > 0)
                q.schedule(10, [this] { step(); });
        }
    };
    Stepper s{q, dog, 60};
    q.schedule(10, [&] { s.step(); });
    q.run();
    EXPECT_GE(dog.epochs(), 1u);
    EXPECT_EQ(dog.silentEpochs(), 0u);
    // The daemon stood down once real work drained, and its trailing
    // epoch check did not drag the clock.
    EXPECT_FALSE(dog.armed());
    EXPECT_EQ(q.now(), 600u);
}

// ---------------------------------------------------------------
// End-to-end recovery invariant
// ---------------------------------------------------------------

/** Build the dpdk workload fresh and run it under @p spec. */
QeiRunStats
runFaulted(const char* spec, QueryMode mode, std::size_t queries = 150)
{
    ChipConfig chip = defaultChip();
    chip.faults =
        spec[0] != '\0' ? parseFaultSpec(spec) : FaultConfig{};
    std::unique_ptr<Workload> workload = makeWorkloadFactories()[0]();
    World world(42, chip);
    workload->build(world);
    const Prepared prepared = workload->prepare(world, queries);
    return runQei(world, prepared, DriverConfig(SchemeConfig::coreIntegrated()).withMode(mode));
}

TEST(FaultRecovery, BlockingResultsBitIdenticalUnderFaults)
{
    const QeiRunStats clean = runFaulted("", QueryMode::Blocking);
    const QeiRunStats faulted =
        runFaulted("pf=0.06,bh=0.03,fw=0.03,seed=5",
                   QueryMode::Blocking);
    EXPECT_EQ(clean.mismatches, 0u);
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
    EXPECT_GT(faulted.faultsInjected, 0u);
    EXPECT_EQ(faulted.swFallbacks, faulted.faultsInjected);
    EXPECT_GT(faulted.swFallbackCycles, 0u);
    EXPECT_GT(faulted.cycles, clean.cycles);
}

TEST(FaultRecovery, NonBlockingSurvivesCombinedMix)
{
    const QeiRunStats clean = runFaulted("", QueryMode::NonBlocking);
    const QeiRunStats faulted = runFaulted(
        "pf=0.05,flush=1200,qst=4,seed=5", QueryMode::NonBlocking);
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
    EXPECT_GT(faulted.qstBackoffs, 0u)
        << "a 4-entry QST under 32-deep NB pressure must back off";
}

TEST(FaultRecovery, TargetedFaultsHitExactlyTheListedQueries)
{
    const QeiRunStats clean = runFaulted("", QueryMode::Blocking);
    const QeiRunStats faulted =
        runFaulted("pf@0,bh@1,fw@2", QueryMode::Blocking);
    EXPECT_EQ(faulted.faultsInjected, 3u);
    EXPECT_EQ(faulted.swFallbacks, 3u);
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
}

TEST(FaultRecovery, InjectedFlushForcesRedo)
{
    const QeiRunStats clean = runFaulted("", QueryMode::Blocking);
    const QeiRunStats faulted =
        runFaulted("flush=800", QueryMode::Blocking);
    EXPECT_GT(faulted.faultFlushes, 0u);
    EXPECT_GT(faulted.swFallbacks, 0u)
        << "flushed in-flight queries must be redone in software";
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_EQ(faulted.resultChecksum, clean.resultChecksum);
}

TEST(FaultRecovery, WithoutFallbackFaultsSurfaceAsExceptions)
{
    // Bare hardware: no software view of the queries is registered,
    // so an injected fault must surface as a delivered exception and
    // a functional mismatch — exactly what setSoftwareFallback() is
    // for.
    ChipConfig chip = defaultChip();
    chip.faults = parseFaultSpec("pf@0,pf@1,pf@2,pf@3");
    World world(7, chip);
    Rng rng(3);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 100; ++i)
        items.emplace_back(randomKey(rng, 16), 4000 + i);
    SimChainedHash table(world.vm, items, 64);
    Prepared prep;
    for (int i = 0; i < 20; ++i) {
        const Key& key = items[rng.below(items.size())].first;
        QueryTrace trace = table.query(key);
        QueryJob job;
        job.headerAddr = table.headerAddr();
        job.keyAddr = table.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = trace.found;
        job.expectValue = trace.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(trace));
    }
    prep.profile.nonQueryInstrPerOp = 20;

    world.resetTiming();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware,
                     SchemeConfig::coreIntegrated());
    const QeiRunStats stats =
        system.runBlocking(prep.jobs, 0, prep.profile);
    EXPECT_EQ(stats.faultsInjected, 4u);
    EXPECT_EQ(stats.swFallbacks, 0u);
    EXPECT_GE(stats.exceptions, 4u);
    EXPECT_GE(stats.mismatches, 1u);
}

TEST(FaultRecovery, MatrixDeterministicAcrossThreadsUnderFaults)
{
    std::vector<WorkloadFactory> factories;
    factories.push_back(makeWorkloadFactories()[0]);

    const auto runAt = [&factories](int threads) {
        bench::MatrixOptions options;
        options.chip.faults =
            parseFaultSpec("pf=0.05,seed=9,flush=3000");
        options.queries = 120;
        options.topologies = {SchemeConfig::coreIntegrated()};
        options.threads = threads;
        return bench::runWorkloadMatrix(factories, options);
    };
    const std::vector<bench::WorkloadRun> serial = runAt(1);
    const std::vector<bench::WorkloadRun> parallel = runAt(8);
    ASSERT_EQ(serial.size(), 1u);
    ASSERT_EQ(parallel.size(), 1u);
    const std::string scheme = SchemeConfig::coreIntegrated().name();
    const QeiRunStats& a = serial[0].schemes.at(scheme);
    const QeiRunStats& b = parallel[0].schemes.at(scheme);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.resultChecksum, b.resultChecksum);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    EXPECT_EQ(a.swFallbacks, b.swFallbacks);
    EXPECT_GT(a.faultsInjected, 0u);
}

// ---------------------------------------------------------------
// QST bookkeeping the recovery path leans on
// ---------------------------------------------------------------

TEST(QstTest, OccupiedCounterTracksActiveIds)
{
    QueryStateTable qst(8);
    Rng rng(99);
    std::vector<int> held;
    for (int step = 0; step < 500; ++step) {
        if (!held.empty() && (qst.full() || rng.below(2) == 0)) {
            const std::size_t pick = rng.below(held.size());
            qst.release(held[pick]);
            held.erase(held.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        } else {
            const int id = qst.allocate();
            ASSERT_GE(id, 0);
            held.push_back(id);
        }
        EXPECT_EQ(qst.occupied(), qst.activeIds().size());
        EXPECT_EQ(qst.occupied(), held.size());
    }
}

TEST(QstTest, ReleaseBumpsSlotEpoch)
{
    QueryStateTable qst(1);
    const int id = qst.allocate();
    ASSERT_EQ(id, 0);
    const std::uint32_t before = qst.at(id).epoch;
    qst.release(id);
    EXPECT_EQ(qst.at(id).epoch, before + 1);
    // Reallocation keeps the bumped epoch, so stale in-flight events
    // scheduled against the old occupant can never touch the new one.
    ASSERT_EQ(qst.allocate(), 0);
    EXPECT_EQ(qst.at(id).epoch, before + 1);
}

// ---------------------------------------------------------------
// Strict bench argument parsing
// ---------------------------------------------------------------

bench::BenchOptions
parseArgs(std::vector<std::string> args)
{
    args.insert(args.begin(), "harness");
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (std::string& arg : args)
        argv.push_back(arg.data());
    return bench::parseBenchArgs(static_cast<int>(argv.size()),
                                 argv.data());
}

TEST(BenchArgsDeathTest, UnknownFlagIsAUsageError)
{
    EXPECT_EXIT(parseArgs({"--bogus"}),
                ::testing::ExitedWithCode(2), "usage");
    EXPECT_EXIT(parseArgs({"--jsonn", "x"}),
                ::testing::ExitedWithCode(2), "unknown option");
}

TEST(BenchArgsDeathTest, MissingOperandIsAUsageError)
{
    EXPECT_EXIT(parseArgs({"--json"}),
                ::testing::ExitedWithCode(2), "usage");
    EXPECT_EXIT(parseArgs({"--threads"}),
                ::testing::ExitedWithCode(2), "usage");
    EXPECT_EXIT(parseArgs({"--faults"}),
                ::testing::ExitedWithCode(2), "usage");
}

TEST(BenchArgsDeathTest, BadFaultSpecDiesBeforeTheRun)
{
    EXPECT_EXIT(parseArgs({"--faults", "zz=1"}),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(BenchArgs, CollectsPositionalsAndFlags)
{
    const bench::BenchOptions options = parseArgs(
        {"dpdk", "--validate", "--threads", "2", "--json=/tmp/x.json",
         "snort"});
    EXPECT_TRUE(options.validate);
    EXPECT_EQ(options.threads, 2);
    EXPECT_EQ(options.jsonPath, "/tmp/x.json");
    ASSERT_EQ(options.positional.size(), 2u);
    EXPECT_EQ(options.positional[0], "dpdk");
    EXPECT_EQ(options.positional[1], "snort");
}

} // namespace
