#include <gtest/gtest.h>

#include "qei/firmware.hh"

using namespace qei;

TEST(FirmwareStore, FactoryInstallsAllStructures)
{
    const FirmwareStore store = FirmwareStore::factory();
    EXPECT_EQ(store.installed(), 7u);
    for (auto type :
         {StructType::LinkedList, StructType::SkipList,
          StructType::BinaryTree, StructType::ChainedHash,
          StructType::CuckooHash, StructType::Trie,
          StructType::HashOfLists}) {
        EXPECT_NE(store.program(type), nullptr);
    }
}

TEST(FirmwareStore, UnsupportedTypeIsNull)
{
    const FirmwareStore store = FirmwareStore::factory();
    EXPECT_EQ(store.program(StructType::Invalid), nullptr);
    EXPECT_EQ(store.program(static_cast<StructType>(9)), nullptr);
}

TEST(FirmwareStore, EmptyStoreHasNothing)
{
    const FirmwareStore store;
    EXPECT_EQ(store.installed(), 0u);
    EXPECT_EQ(store.program(StructType::LinkedList), nullptr);
}

TEST(FirmwareStore, InstallReplacesProgram)
{
    FirmwareStore store = FirmwareStore::factory();
    CfaProgram replacement = firmware::buildLinkedList();
    replacement.name = "patched-linked-list";
    store.installProgram(StructType::LinkedList,
                         std::move(replacement));
    EXPECT_EQ(store.installed(), 7u);
    EXPECT_EQ(store.program(StructType::LinkedList)->name,
              "patched-linked-list");
}

TEST(FirmwareStore, FirmwareUpdateAddsNewType)
{
    // The Sec. IV-B extensibility story: ship a new program into an
    // unused slot via the microcode-update path.
    FirmwareStore store = FirmwareStore::factory();
    CfaProgram fresh = firmware::buildBinaryTree();
    fresh.name = "red-black-tree-v2";
    store.installProgram(static_cast<StructType>(8), std::move(fresh));
    EXPECT_EQ(store.installed(), 8u);
    EXPECT_NE(store.program(static_cast<StructType>(8)), nullptr);
}

TEST(FirmwarePrograms, AllValidateAndDisassemble)
{
    for (const CfaProgram& p :
         {firmware::buildLinkedList(), firmware::buildSkipList(),
          firmware::buildBinaryTree(), firmware::buildChainedHash(),
          firmware::buildCuckooHash(), firmware::buildTrie(),
          firmware::buildHashOfLists()}) {
        EXPECT_FALSE(p.states.empty()) << p.name;
        EXPECT_LE(p.states.size(), CfaProgram::kMaxStates) << p.name;
        EXPECT_FALSE(p.disassemble().empty()) << p.name;
    }
}

TEST(FirmwareProgams, EveryProgramCanTerminate)
{
    // Each program must contain at least one Return state.
    for (const CfaProgram& p :
         {firmware::buildLinkedList(), firmware::buildSkipList(),
          firmware::buildBinaryTree(), firmware::buildChainedHash(),
          firmware::buildCuckooHash(), firmware::buildTrie()}) {
        bool hasReturn = false;
        for (const auto& mi : p.states)
            hasReturn |= mi.op == MicroOpcode::Return;
        EXPECT_TRUE(hasReturn) << p.name;
    }
}

TEST(FirmwareProgams, CuckooUsesSignatureScan)
{
    // The cuckoo program must stage bucket lines and scan signatures
    // with LoadField/CompareReg pairs (the DPDK fast path).
    const CfaProgram p = firmware::buildCuckooHash();
    int lines = 0;
    int sigLoads = 0;
    for (const auto& mi : p.states) {
        lines += mi.op == MicroOpcode::MemReadLine ? 1 : 0;
        sigLoads += mi.op == MicroOpcode::LoadField ? 1 : 0;
    }
    EXPECT_EQ(lines, 4);     // 2 lines x 2 buckets
    EXPECT_GE(sigLoads, 16); // 8 sigs + 8 kv pointers
}

TEST(FirmwareProgams, TrieUsesIndexSearch)
{
    const CfaProgram p = firmware::buildTrie();
    bool hasSearch = false;
    for (const auto& mi : p.states)
        hasSearch |= mi.op == MicroOpcode::IndexSearch;
    EXPECT_TRUE(hasSearch);
}

TEST(FirmwareStoreDeath, BadSlotDies)
{
    FirmwareStore store;
    EXPECT_DEATH(store.installProgram(static_cast<StructType>(200),
                                      firmware::buildLinkedList()),
                 "bad StructType");
}
