#include <gtest/gtest.h>

#include "common/format.hh"

using namespace qei;

TEST(Format, PlainString)
{
    EXPECT_EQ(fmt("hello"), "hello");
}

TEST(Format, SingleDefaultField)
{
    EXPECT_EQ(fmt("x={}", 42), "x=42");
}

TEST(Format, MultipleFields)
{
    EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, HexLower)
{
    EXPECT_EQ(fmt("{:x}", 255), "ff");
}

TEST(Format, HexWithPrefix)
{
    EXPECT_EQ(fmt("{:#x}", 4096), "0x1000");
}

TEST(Format, FixedPrecision)
{
    EXPECT_EQ(fmt("{:.2f}", 3.14159), "3.14");
}

TEST(Format, FixedPrecisionRounds)
{
    EXPECT_EQ(fmt("{:.1f}", 2.55), "2.5"); // ties-to-even or impl
}

TEST(Format, WidthPadsLeft)
{
    EXPECT_EQ(fmt("{:5}", 42), "   42");
}

TEST(Format, BoolRendersAsWord)
{
    EXPECT_EQ(fmt("{} {}", true, false), "true false");
}

TEST(Format, Uint8RendersNumerically)
{
    std::uint8_t v = 65;
    EXPECT_EQ(fmt("{}", v), "65");
}

TEST(Format, StringArgument)
{
    std::string s = "abc";
    EXPECT_EQ(fmt("[{}]", s), "[abc]");
}

TEST(Format, CStringArgument)
{
    EXPECT_EQ(fmt("[{}]", "abc"), "[abc]");
}

TEST(Format, EscapedBraces)
{
    EXPECT_EQ(fmt("{{}}"), "{}");
}

TEST(Format, TooFewArgumentsDoesNotCrash)
{
    EXPECT_EQ(fmt("{} {}", 1), "1 {?}");
}

TEST(Format, NegativeNumbers)
{
    EXPECT_EQ(fmt("{}", -17), "-17");
}

TEST(Format, LargeUnsigned)
{
    EXPECT_EQ(fmt("{}", 18446744073709551615ULL),
              "18446744073709551615");
}

TEST(Format, PointerFallback)
{
    // Unknown types fall back to operator<<.
    const void* p = nullptr;
    const std::string out = fmt("{}", p);
    EXPECT_FALSE(out.empty());
}

TEST(Format, UnterminatedFieldIsLiteral)
{
    EXPECT_EQ(fmt("abc{def", 1), "abc{def");
}
