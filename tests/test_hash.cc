#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/hash.hh"

using namespace qei;

TEST(Crc32c, KnownVector)
{
    // The canonical CRC32-C check value for "123456789".
    const char* s = "123456789";
    EXPECT_EQ(crc32c(s, std::strlen(s)), 0xE3069283u);
}

TEST(Crc32c, EmptyInput)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0x00000000u ^ 0xFFFFFFFFu ^
                                      0xFFFFFFFFu ^ 0x00000000u);
    // Equivalent: init ^ final-xor on zero bytes.
    EXPECT_EQ(crc32c("", 0), 0x00000000u);
}

TEST(Crc32c, SingleByteDiffers)
{
    const char a = 'a';
    const char b = 'b';
    EXPECT_NE(crc32c(&a, 1), crc32c(&b, 1));
}

TEST(Jhash, Deterministic)
{
    const char* s = "query acceleration";
    EXPECT_EQ(jhash(s, std::strlen(s)), jhash(s, std::strlen(s)));
}

TEST(Jhash, SeedChangesResult)
{
    const char* s = "query acceleration";
    EXPECT_NE(jhash(s, std::strlen(s), 0), jhash(s, std::strlen(s), 1));
}

TEST(Jhash, AllTailLengths)
{
    // Exercise every switch arm (lengths 0..13 cover the 12-byte
    // block plus all tails).
    std::set<std::uint32_t> seen;
    const char buf[16] = "abcdefghijklmno";
    for (std::size_t len = 0; len <= 13; ++len)
        seen.insert(jhash(buf, len));
    EXPECT_GE(seen.size(), 13u); // collisions vanishingly unlikely
}

TEST(Fnv1a, KnownVector)
{
    // FNV-1a 64-bit of "a" is the published 0xAF63DC4C8601EC8C.
    EXPECT_EQ(fnv1a64("a", 1), 0xAF63DC4C8601EC8CULL);
}

TEST(Fnv1a, OffsetBasisOnEmpty)
{
    EXPECT_EQ(fnv1a64("", 0), 0xCBF29CE484222325ULL);
}

TEST(Mix64, Bijectiveish)
{
    std::set<std::uint64_t> out;
    for (std::uint64_t i = 0; i < 1000; ++i)
        out.insert(mix64(i));
    EXPECT_EQ(out.size(), 1000u);
}

TEST(Mix64, AvalancheOnLowBit)
{
    const std::uint64_t a = mix64(0);
    const std::uint64_t b = mix64(1);
    int diff = __builtin_popcountll(a ^ b);
    EXPECT_GT(diff, 16); // strong diffusion
}

TEST(ComputeHash, DispatchesAllFunctions)
{
    const char* s = "key-bytes";
    const std::size_t n = std::strlen(s);
    const auto a = computeHash(HashFunction::Crc32c, s, n);
    const auto b = computeHash(HashFunction::Jenkins, s, n);
    const auto c = computeHash(HashFunction::Fnv1a, s, n);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
}

TEST(ComputeHash, SeedMatters)
{
    const char* s = "key-bytes";
    const std::size_t n = std::strlen(s);
    for (auto fn : {HashFunction::Crc32c, HashFunction::Jenkins,
                    HashFunction::Fnv1a}) {
        EXPECT_NE(computeHash(fn, s, n, 0), computeHash(fn, s, n, 1));
    }
}
