#include <gtest/gtest.h>

#include <map>

#include "mem/hierarchy.hh"

using namespace qei;

namespace {

struct HierarchyFixture : ::testing::Test
{
    MemoryHierarchy memory;
    static constexpr Addr kLine = 0x10000;
};

} // namespace

TEST_F(HierarchyFixture, LatencyOrderingAcrossLevels)
{
    // Cold: DRAM.
    const MemAccess dramHit = memory.coreAccess(0, kLine, false, 0);
    EXPECT_EQ(dramHit.servedBy, ServedBy::Dram);
    // Now everything is filled: L1 hit.
    const MemAccess l1Hit = memory.coreAccess(0, kLine, false, 100);
    EXPECT_EQ(l1Hit.servedBy, ServedBy::L1);
    EXPECT_LT(l1Hit.latency, dramHit.latency);

    // Another core: misses privately, hits LLC.
    const MemAccess llcHit = memory.coreAccess(1, kLine, false, 200);
    EXPECT_EQ(llcHit.servedBy, ServedBy::Llc);
    EXPECT_GT(llcHit.latency, l1Hit.latency);
    EXPECT_LT(llcHit.latency, dramHit.latency);
}

TEST_F(HierarchyFixture, L2HitBetweenL1AndLlc)
{
    memory.coreAccess(0, kLine, false, 0); // fill all levels
    memory.l1d(0).invalidate(kLine);
    const MemAccess l2Hit = memory.coreAccess(0, kLine, false, 100);
    EXPECT_EQ(l2Hit.servedBy, ServedBy::L2);
    const MemAccess l1Hit = memory.coreAccess(0, kLine, false, 200);
    EXPECT_LT(l1Hit.latency, l2Hit.latency);
}

TEST_F(HierarchyFixture, QeiL2PathDoesNotPolluteL1)
{
    memory.l2Access(0, kLine, false, 0);
    EXPECT_FALSE(memory.l1d(0).probe(kLine));
    EXPECT_FALSE(memory.l2(0).probe(kLine));
    // But the LLC keeps a copy.
    const int slice = memory.homeSlice(kLine);
    EXPECT_TRUE(memory.llcSlice(slice).probe(kLine));
}

TEST_F(HierarchyFixture, QeiL2PathHitsWarmL2)
{
    memory.coreAccess(0, kLine, false, 0); // core warms its L2
    const MemAccess a = memory.l2Access(0, kLine, false, 100);
    EXPECT_EQ(a.servedBy, ServedBy::L2);
    EXPECT_EQ(a.latency, memory.l2(0).latency());
}

TEST_F(HierarchyFixture, ChaAccessNeverTouchesPrivateCaches)
{
    memory.chaAccess(3, kLine, false, 0);
    for (int c = 0; c < memory.cores(); ++c) {
        EXPECT_FALSE(memory.l1d(c).probe(kLine));
        EXPECT_FALSE(memory.l2(c).probe(kLine));
    }
}

TEST_F(HierarchyFixture, ChaAccessLocalSliceIsCheapest)
{
    const int slice = memory.homeSlice(kLine);
    memory.preloadLlc(kLine);
    const Cycles local =
        memory.chaAccess(slice, kLine, false, 0).latency;
    const int far = slice == 0 ? 23 : 0;
    const Cycles remote =
        memory.chaAccess(far, kLine, false, 0).latency;
    EXPECT_LT(local, remote);
}

TEST_F(HierarchyFixture, HomeSliceStableAndInRange)
{
    for (Addr a = 0; a < 1 << 16; a += 4096) {
        const int s = memory.homeSlice(a);
        EXPECT_GE(s, 0);
        EXPECT_LT(s, memory.cores());
        EXPECT_EQ(s, memory.homeSlice(a)); // stable
        EXPECT_EQ(s, memory.homeSlice(a + 1)); // same line
    }
}

TEST_F(HierarchyFixture, HomeSliceRoughlyUniform)
{
    std::map<int, int> counts;
    const int n = 24000;
    for (int i = 0; i < n; ++i)
        ++counts[memory.homeSlice(static_cast<Addr>(i) *
                                  kCacheLineBytes)];
    for (const auto& [slice, count] : counts) {
        (void)slice;
        EXPECT_NEAR(count, n / 24, n / 24 * 0.25);
    }
}

TEST_F(HierarchyFixture, PreloadLlcMakesLlcHit)
{
    memory.preloadLlc(kLine);
    const MemAccess a = memory.coreAccess(0, kLine, false, 0);
    EXPECT_EQ(a.servedBy, ServedBy::Llc);
}

TEST_F(HierarchyFixture, FlushAllCachesForgets)
{
    memory.coreAccess(0, kLine, false, 0);
    memory.flushAllCaches();
    const MemAccess a = memory.coreAccess(0, kLine, false, 1000);
    EXPECT_EQ(a.servedBy, ServedBy::Dram);
}

TEST_F(HierarchyFixture, LlcHitRateAggregates)
{
    memory.preloadLlc(kLine);
    memory.chaAccess(0, kLine, false, 0);
    EXPECT_GT(memory.llcHitRate(), 0.0);
}

TEST_F(HierarchyFixture, MessageLatenciesPositive)
{
    EXPECT_GT(memory.messageRoundTrip(0, 23, 0), 0u);
    EXPECT_GE(memory.messageRoundTrip(0, 23, 0),
              memory.messageOneWay(0, 23, 0));
}
