#include <gtest/gtest.h>

#include <stdexcept>

#include "common/json.hh"

using namespace qei;

TEST(Json, ScalarsDumpCompactly)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json o = Json::object();
    o["zebra"] = 1;
    o["alpha"] = 2;
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2}");
    EXPECT_EQ(o.items()[0].first, "zebra");
}

TEST(Json, OperatorBracketObjectifiesNull)
{
    Json v;
    v["key"] = "value";
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("key").asString(), "value");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), std::out_of_range);
}

TEST(Json, Uint64RoundTripsExactly)
{
    // A value above 2^53 would lose precision through a double.
    const std::uint64_t big = 9007199254740993ull; // 2^53 + 1
    Json o = Json::object();
    o["big"] = big;
    const Json back = Json::parse(o.dump());
    EXPECT_EQ(back.at("big").asUint(), big);
}

TEST(Json, ParseHandlesNestingAndEscapes)
{
    const Json v = Json::parse(
        "{\"a\": [1, 2.5, true, null], \"s\": \"line\\nbreak \\\"q\\\"\"}");
    EXPECT_EQ(v.at("a").size(), 4u);
    EXPECT_EQ(v.at("a").at(0).asInt(), 1);
    EXPECT_DOUBLE_EQ(v.at("a").at(1).asDouble(), 2.5);
    EXPECT_TRUE(v.at("a").at(2).asBool());
    EXPECT_TRUE(v.at("a").at(3).isNull());
    EXPECT_EQ(v.at("s").asString(), "line\nbreak \"q\"");
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("nope"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(Json::parse("1 trailing"), std::runtime_error);
}

TEST(Json, DumpParseRoundTripWithIndent)
{
    Json o = Json::object();
    o["name"] = "fig07";
    Json arr = Json::array();
    arr.push_back(1.25);
    arr.push_back(Json::object());
    o["data"] = std::move(arr);

    const std::string pretty = o.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    const Json back = Json::parse(pretty);
    EXPECT_EQ(back.at("name").asString(), "fig07");
    EXPECT_DOUBLE_EQ(back.at("data").at(0).asDouble(), 1.25);
    EXPECT_TRUE(back.at("data").at(1).isObject());
}

TEST(Json, QuoteEscapesControlCharacters)
{
    EXPECT_EQ(Json::quote("a\tb"), "\"a\\tb\"");
    EXPECT_EQ(Json::quote("\"\\"), "\"\\\"\\\\\"");
}
