#include <gtest/gtest.h>

#include "noc/mesh.hh"

using namespace qei;

TEST(Mesh, CoordTileRoundtrip)
{
    Mesh mesh;
    for (int t = 0; t < mesh.tiles(); ++t)
        EXPECT_EQ(mesh.tileOf(mesh.coordOf(t)), t);
}

TEST(Mesh, HopCountManhattan)
{
    Mesh mesh; // 6x4
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 5), 5);  // across the top row
    EXPECT_EQ(mesh.hops(0, 23), 8); // opposite corner: 5 + 3
    EXPECT_EQ(mesh.hops(7, 7), 0);
}

TEST(Mesh, HopsSymmetric)
{
    Mesh mesh;
    for (int a = 0; a < mesh.tiles(); a += 5) {
        for (int b = 0; b < mesh.tiles(); b += 3)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
}

TEST(Mesh, LatencyGrowsWithDistance)
{
    Mesh mesh;
    const Cycles near = mesh.traverse(0, 1, 16, 0);
    const Cycles far = mesh.traverse(0, 23, 16, 0);
    EXPECT_GT(far, near);
}

TEST(Mesh, SelfTraverseIsInjectionOnly)
{
    Mesh mesh;
    EXPECT_EQ(mesh.traverse(3, 3, 64, 0),
              mesh.params().injectionLatency);
}

TEST(Mesh, UncongestedLatencyIsDeterministic)
{
    Mesh mesh;
    const Cycles expected = mesh.params().injectionLatency +
                            static_cast<Cycles>(mesh.hops(0, 23)) *
                                mesh.params().hopLatency;
    EXPECT_EQ(mesh.traverse(0, 23, 16, 0), expected);
}

TEST(Mesh, CongestionAddsQueueingDelay)
{
    MeshParams params;
    params.utilisationWindow = 1000;
    params.linkBytesPerCycle = 4.0; // easy to saturate
    Mesh mesh(params);
    // Hammer one link for a full window, then roll the window.
    for (int i = 0; i < 2000; ++i)
        mesh.traverse(0, 1, 64, 500);
    const Cycles hot = mesh.traverse(0, 1, 16, 2000);
    Mesh cold(params);
    const Cycles base = cold.traverse(0, 1, 16, 2000);
    EXPECT_GT(hot, base);
    EXPECT_GT(mesh.peakLinkUtilisation(), 0.5);
}

TEST(Mesh, RoundTripChargesBothDirections)
{
    Mesh mesh;
    const std::uint64_t before = mesh.totalBytes();
    mesh.roundTrip(0, 5, 16, 72, 0);
    EXPECT_EQ(mesh.totalBytes() - before, 88u);
}

TEST(Mesh, ResetTrafficClearsAccounting)
{
    Mesh mesh;
    mesh.traverse(0, 5, 64, 0);
    mesh.resetTraffic();
    EXPECT_EQ(mesh.totalBytes(), 0u);
    EXPECT_DOUBLE_EQ(mesh.peakLinkUtilisation(), 0.0);
}

TEST(MeshDeath, BadTilePanics)
{
    Mesh mesh;
    EXPECT_DEATH((void)mesh.coordOf(24), "out of range");
}
