/**
 * The qei::metrics subsystem: sliding-window percentile estimator
 * (exact over the retained window; windowed-vs-full-stream tolerance
 * on seeded Poisson and bursty arrival streams), window wrap and
 * region-of-interest reset, SLO threshold crossings, the Recorder CSV,
 * and — when compiled in — the end-to-end guarantee that sampling
 * rides daemon events only: closed-loop run results are bit-identical
 * with sampling on and off.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "metrics/metrics.hh"

using namespace qei;

namespace {

/** Offline nearest-rank percentile over all of @p values. */
double
exactPercentile(std::vector<double> values, double fraction)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[rank];
}

/** Exponential inter-arrival-style samples (Poisson process gaps). */
std::vector<double>
poissonGaps(std::size_t n, double mean, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Clamp away u == 0 so log() stays finite.
        const double u = std::max(rng.uniform(), 1e-12);
        out.push_back(-std::log(u) * mean);
    }
    return out;
}

/**
 * Bursty stream: baseline service latency with seeded bursts of 10x
 * samples — the shape an overloaded QST produces.
 */
std::vector<double>
burstySamples(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double base = 100.0 + rng.uniform() * 20.0;
        out.push_back(rng.chance(0.05) ? base * 10.0 : base);
    }
    return out;
}

} // namespace

TEST(Metrics, WindowPercentileIsExactOverRetainedWindow)
{
    // After wrapping, the estimator must agree exactly with an
    // offline sort of the trailing `capacity` samples.
    const std::size_t capacity = 64;
    metrics::SlidingWindow window(capacity);
    const std::vector<double> stream = burstySamples(1000, 7);
    for (double v : stream)
        window.push(v);
    EXPECT_EQ(window.count(), capacity);
    EXPECT_EQ(window.pushed(), stream.size());

    const std::vector<double> tail(stream.end() - capacity,
                                   stream.end());
    for (double f : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_DOUBLE_EQ(window.percentile(f),
                         exactPercentile(tail, f))
            << "fraction " << f;
    }
}

TEST(Metrics, WindowedTailTracksFullStreamWithinTolerance)
{
    // A windowed p99/p999 over a *stationary* stream is an estimate
    // of the full-stream percentile. docs/observability.md documents
    // the tolerance: p50/p99 within 15% relative for a 512-sample
    // window; p999 is window-limited (a 512-sample window holds fewer
    // than one 1-in-1000 event on average) and only bounded to 35%.
    // Seeded, so this is deterministic.
    struct Case
    {
        const char* name;
        std::vector<double> stream;
    };
    const std::vector<Case> cases{
        {"poisson", poissonGaps(8192, 500.0, 42)},
        {"bursty", burstySamples(8192, 1234)},
    };
    for (const Case& c : cases) {
        metrics::SlidingWindow window(512);
        for (double v : c.stream)
            window.push(v);
        for (double f : {0.5, 0.99}) {
            const double exact = exactPercentile(c.stream, f);
            const double windowed = window.percentile(f);
            ASSERT_GT(exact, 0.0) << c.name;
            EXPECT_NEAR(windowed / exact, 1.0, 0.15)
                << c.name << " p" << f * 100.0;
        }
        EXPECT_NEAR(window.percentile(0.999) /
                        exactPercentile(c.stream, 0.999),
                    1.0, 0.35)
            << c.name << " p999";
    }
}

TEST(Metrics, WindowWrapAndResetEdgeCases)
{
    metrics::SlidingWindow window(4);
    EXPECT_EQ(window.count(), 0u);
    EXPECT_DOUBLE_EQ(window.percentile(0.99), 0.0); // empty: defined 0

    // Partial fill: percentiles over only the pushed samples.
    window.push(30.0);
    window.push(10.0);
    EXPECT_EQ(window.count(), 2u);
    EXPECT_DOUBLE_EQ(window.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(window.percentile(1.0), 30.0);

    // Wrap: only the newest `capacity` samples survive.
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0})
        window.push(v);
    EXPECT_EQ(window.count(), 4u);
    EXPECT_EQ(window.pushed(), 8u);
    EXPECT_DOUBLE_EQ(window.percentile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(window.percentile(1.0), 6.0);

    // Region-of-interest reset drops everything.
    window.reset();
    EXPECT_EQ(window.count(), 0u);
    EXPECT_EQ(window.pushed(), 0u);
    EXPECT_DOUBLE_EQ(window.percentile(0.99), 0.0);
    window.push(7.0);
    EXPECT_DOUBLE_EQ(window.percentile(0.5), 7.0);
}

TEST(Metrics, TailMonitorDetectsSloCrossings)
{
    metrics::TailMonitor monitor("sojourn", 16, /*slo_p99=*/1000.0);
    metrics::TimeSeries p50, p99, p999;
    std::vector<metrics::TimeSeries*> series{&p50, &p99, &p999};
    std::vector<metrics::SloEvent> events;

    // Empty window: tick records nothing.
    monitor.tick(100, series, events);
    EXPECT_TRUE(p99.points.empty());
    EXPECT_TRUE(events.empty());

    // Healthy latencies: below the SLO, no crossing.
    for (int i = 0; i < 16; ++i)
        monitor.push(200.0);
    monitor.tick(200, series, events);
    ASSERT_EQ(p99.points.size(), 1u);
    EXPECT_FALSE(monitor.breaching());
    EXPECT_TRUE(events.empty());

    // Tail blows past the SLO: one rising crossing, not re-reported
    // while the breach persists.
    for (int i = 0; i < 16; ++i)
        monitor.push(5000.0);
    monitor.tick(300, series, events);
    monitor.tick(400, series, events);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].rising);
    EXPECT_EQ(events[0].tick, 300u);
    EXPECT_EQ(events[0].monitor, "sojourn");
    EXPECT_GT(events[0].value, events[0].threshold);
    EXPECT_TRUE(monitor.breaching());

    // Recovery: one falling crossing once the window drains.
    for (int i = 0; i < 16; ++i)
        monitor.push(150.0);
    monitor.tick(500, series, events);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_FALSE(events[1].rising);
    EXPECT_FALSE(monitor.breaching());

    // The three percentile series advanced in lockstep.
    EXPECT_EQ(p50.points.size(), p99.points.size());
    EXPECT_EQ(p999.points.size(), p99.points.size());
}

TEST(Metrics, RunSeriesJsonAndCsvShape)
{
    metrics::RunSeries run;
    run.intervalCycles = 1024;
    run.samples = 2;
    metrics::TimeSeries s;
    s.name = "system.metrics.qst_occupancy";
    s.kind = metrics::SeriesKind::Gauge;
    s.points.push_back({1024, 3.0});
    s.points.push_back({2048, 5.0});
    run.series.push_back(s);
    run.sloThresholdP99 = 900.0;
    run.sloEvents.push_back({2048, "sojourn", 1500.0, 900.0, true});

    const Json doc = run.toJson();
    EXPECT_EQ(doc.at("interval_cycles").asUint(), 1024u);
    EXPECT_EQ(doc.at("samples").asUint(), 2u);
    const Json& series =
        doc.at("series").at("system.metrics.qst_occupancy");
    EXPECT_EQ(series.at("kind").asString(), "gauge");
    EXPECT_EQ(series.at("points").at(1).at(0).asUint(), 2048u);
    EXPECT_DOUBLE_EQ(series.at("points").at(1).at(1).asDouble(), 5.0);
    const Json& slo = doc.at("slo");
    EXPECT_DOUBLE_EQ(slo.at("threshold_p99").asDouble(), 900.0);
    EXPECT_EQ(slo.at("events").at(0).at("direction").asString(),
              "breach");

    metrics::Recorder recorder;
    recorder.add("unit/cell", run);
    const std::string csv = recorder.csv();
    EXPECT_NE(csv.find("cell,series,kind,tick,value\n"),
              std::string::npos);
    EXPECT_NE(csv.find("unit/cell,system.metrics.qst_occupancy,gauge,"
                       "1024,3"),
              std::string::npos);
    EXPECT_NE(csv.find("slo:sojourn"), std::string::npos);
}

#if QEI_METRICS

namespace
{

/** One small closed-loop accelerated run, sampling on or off. */
QeiRunStats
sampledRun(bool enable)
{
    metrics::runtimeConfig().enabled = enable;
    auto workload = makeWorkloadFactories()[0]();
    World world(11);
    workload->build(world);
    const Prepared prep = workload->prepare(world, 200);
    QeiRunStats stats =
        runQei(world, prep,
               DriverConfig(SchemeConfig::coreIntegrated())
                   .withLabel("unit/cell"));
    metrics::runtimeConfig().enabled = false;
    return stats;
}

} // namespace

TEST(Metrics, SamplingIsTimingNeutralAndCollectsSeries)
{
    metrics::Recorder::global().clear();
    const QeiRunStats off = sampledRun(false);
    const QeiRunStats on = sampledRun(true);

    // Daemon-scheduled sampling must not perturb the simulation:
    // same cycles, same result digest, same query count.
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.queries, on.queries);
    EXPECT_EQ(off.resultChecksum, on.resultChecksum);

    // Off: no series anywhere (artifacts keep their shape).
    EXPECT_EQ(off.metrics, nullptr);
    const Json offJson = bench::toJson(off);
    EXPECT_FALSE(offJson.contains("metrics"));

    // On: the standard series exist and carry samples.
    ASSERT_NE(on.metrics, nullptr);
    EXPECT_GT(on.metrics->samples, 0u);
    bool haveOccupancy = false;
    bool haveSojournP99 = false;
    bool haveQueries = false;
    for (const metrics::TimeSeries& s : on.metrics->series) {
        if (s.name == "system.metrics.qst_occupancy")
            haveOccupancy = !s.points.empty();
        if (s.name == "system.metrics.sojourn_p99_w")
            haveSojournP99 = !s.points.empty();
        if (s.name == "system.accel0.queries")
            haveQueries = !s.points.empty();
    }
    EXPECT_TRUE(haveOccupancy);
    EXPECT_TRUE(haveSojournP99);
    EXPECT_TRUE(haveQueries);
    const Json onJson = bench::toJson(on);
    ASSERT_TRUE(onJson.contains("metrics"));
    EXPECT_GT(onJson.at("metrics").at("samples").asUint(), 0u);

    // The run landed in the process-wide Recorder under its label.
    EXPECT_EQ(metrics::Recorder::global().size(), 1u);
    const std::string csv = metrics::Recorder::global().csv();
    EXPECT_NE(csv.find("unit/cell,"), std::string::npos);
    metrics::Recorder::global().clear();
    EXPECT_EQ(metrics::Recorder::global().size(), 0u);
}

TEST(Metrics, DrainResetsForTheNextRunRegion)
{
    metrics::MetricsSampler sampler;
    sampler.addGauge("g", [] { return 1.0; });
    EventQueue events;
    int fired = 0;
    // A little event activity so the daemon has work to shadow.
    for (int i = 0; i < 8; ++i) {
        events.schedule(static_cast<Cycles>(i) * 4096, [&] {
            ++fired;
        });
    }
    sampler.arm(events);
    events.run();
    EXPECT_EQ(fired, 8);
    EXPECT_FALSE(sampler.armed()); // stood down with the queue
    const metrics::RunSeries first = sampler.drain();
    EXPECT_GT(first.samples, 0u);
    ASSERT_EQ(first.series.size(), 1u);
    EXPECT_FALSE(first.series[0].points.empty());

    // After drain, the next region starts from zero samples.
    const metrics::RunSeries empty = sampler.drain();
    EXPECT_EQ(empty.samples, 0u);
    ASSERT_EQ(empty.series.size(), 1u);
    EXPECT_TRUE(empty.series[0].points.empty());
}

#endif // QEI_METRICS
