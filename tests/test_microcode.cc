#include <gtest/gtest.h>

#include "qei/microcode.hh"

using namespace qei;

TEST(ProgramBuilder, AddsStatesInOrder)
{
    ProgramBuilder b("t");
    MicroInst ret;
    ret.op = MicroOpcode::Return;
    EXPECT_EQ(b.add(ret), 0);
    EXPECT_EQ(b.add(ret), 1);
    const CfaProgram p = b.finish();
    EXPECT_EQ(p.states.size(), 2u);
    EXPECT_EQ(p.name, "t");
}

TEST(ProgramBuilder, ReservePatchWorkflow)
{
    ProgramBuilder b("t");
    const std::uint8_t slot = b.reserve();
    MicroInst ret;
    ret.op = MicroOpcode::Return;
    b.at(slot) = ret;
    const CfaProgram p = b.finish();
    EXPECT_EQ(p.states[0].op, MicroOpcode::Return);
}

TEST(CfaProgram, ValidateAcceptsWellFormed)
{
    ProgramBuilder b("ok");
    MicroInst alu;
    alu.op = MicroOpcode::Alu;
    alu.dst = kRegT4;
    alu.next = 1;
    b.add(alu);
    MicroInst ret;
    ret.op = MicroOpcode::Return;
    b.add(ret);
    EXPECT_NO_FATAL_FAILURE((void)b.finish());
}

TEST(CfaProgramDeath, EmptyProgramDies)
{
    ProgramBuilder b("empty");
    EXPECT_DEATH((void)b.finish(), "no states");
}

TEST(CfaProgramDeath, OutOfRangeTransitionDies)
{
    ProgramBuilder b("bad");
    MicroInst mi;
    mi.op = MicroOpcode::Return;
    mi.next = 77; // points past the end
    b.add(mi);
    EXPECT_DEATH((void)b.finish(), "out-of-range transition");
}

TEST(CfaProgramDeath, BadRegisterDies)
{
    ProgramBuilder b("bad");
    MicroInst mi;
    mi.op = MicroOpcode::Alu;
    mi.dst = 12; // only 8 registers
    b.add(mi);
    EXPECT_DEATH((void)b.finish(), "bad register");
}

TEST(CfaProgramDeath, BadWidthDies)
{
    ProgramBuilder b("bad");
    MicroInst mi;
    mi.op = MicroOpcode::MemReadField;
    mi.width = 9;
    b.add(mi);
    EXPECT_DEATH((void)b.finish(), "bad width");
}

TEST(CfaProgram, DisassembleMentionsOpsAndLabels)
{
    ProgramBuilder b("disasm");
    MicroInst mi;
    mi.op = MicroOpcode::HashKey;
    mi.dst = kRegT4;
    mi.label = "hash the key";
    mi.next = 1;
    b.add(mi);
    MicroInst ret;
    ret.op = MicroOpcode::Return;
    ret.imm = 1;
    b.add(ret);
    const std::string out = b.finish().disassemble();
    EXPECT_NE(out.find("HASH"), std::string::npos);
    EXPECT_NE(out.find("hash the key"), std::string::npos);
    EXPECT_NE(out.find("RET"), std::string::npos);
}

TEST(CfaProgram, StateLimitIs256)
{
    ProgramBuilder b("big");
    MicroInst ret;
    ret.op = MicroOpcode::Return;
    for (int i = 0; i < 256; ++i)
        b.add(ret);
    EXPECT_EQ(b.finish().states.size(), 256u);
}
