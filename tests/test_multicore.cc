// Multi-core issue tests: the Tab. I scalability scenario — several
// cores issuing blocking queries concurrently into shared
// accelerators, memory system, and NoC.

#include <gtest/gtest.h>

#include "ds/chained_hash.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

struct MultiHarness
{
    MultiHarness() : world(13), rng(2)
    {
        std::vector<std::pair<Key, std::uint64_t>> items;
        for (int i = 0; i < 600; ++i)
            items.emplace_back(randomKey(rng, 16), 7000 + i);
        table = std::make_unique<SimChainedHash>(world.vm, items, 256);
        prep.profile.nonQueryInstrPerOp = 15;
        for (int q = 0; q < 240; ++q) {
            const Key& key = items[rng.below(items.size())].first;
            QueryTrace t = table->query(key);
            QueryJob job;
            job.headerAddr = table->headerAddr();
            job.keyAddr = table->stageKey(key);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = t.found;
            job.expectValue = t.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(t));
        }
    }

    QeiRunStats
    run(const SchemeConfig& scheme, int cores)
    {
        world.resetTiming();
        world.warmLlc();
        QeiSystem system(world.chip, world.events, world.hierarchy,
                         world.vm, world.firmware, scheme);
        return system.runBlockingMultiCore(prep.jobs, cores,
                                           prep.profile);
    }

    World world;
    Rng rng;
    std::unique_ptr<SimChainedHash> table;
    Prepared prep;
};

} // namespace

TEST(MultiCore, AllQueriesCompleteCorrectly)
{
    MultiHarness h;
    for (int cores : {1, 2, 8, 24}) {
        const QeiRunStats stats =
            h.run(SchemeConfig::coreIntegrated(), cores);
        EXPECT_EQ(stats.queries, h.prep.jobs.size());
        EXPECT_EQ(stats.mismatches, 0u) << cores << " cores";
        EXPECT_EQ(stats.exceptions, 0u);
    }
}

TEST(MultiCore, OneCoreuEqualsSingleCoreSemantics)
{
    MultiHarness h;
    const QeiRunStats multi =
        h.run(SchemeConfig::coreIntegrated(), 1);
    const QeiRunStats single =
        runQei(h.world, h.prep, DriverConfig(SchemeConfig::coreIntegrated()));
    // Same machinery, same load: cycles agree to within a few percent
    // (the multi-core runner skips the per-query retire bookkeeping
    // order but nothing structural).
    const double ratio = static_cast<double>(multi.cycles) /
                         static_cast<double>(single.cycles);
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(MultiCore, DistributedSchemesScale)
{
    MultiHarness h;
    const QeiRunStats one = h.run(SchemeConfig::coreIntegrated(), 1);
    const QeiRunStats eight =
        h.run(SchemeConfig::coreIntegrated(), 8);
    // Per-core accelerators: 8 cores must be much faster than 1.
    EXPECT_LT(eight.cycles * 3, one.cycles);
}

TEST(MultiCore, DeviceSaturatesUnderManyCores)
{
    MultiHarness h;
    const QeiRunStats coreInt8 =
        h.run(SchemeConfig::coreIntegrated(), 8);
    const QeiRunStats device8 =
        h.run(SchemeConfig::deviceDirect(), 8);
    // The shared single device stop falls behind the distributed
    // per-core accelerators at 8 issuing cores.
    EXPECT_GT(device8.cycles, coreInt8.cycles);
}

TEST(MultiCore, ChaSharedInstancesStillScale)
{
    MultiHarness h;
    const QeiRunStats one = h.run(SchemeConfig::chaTlb(), 1);
    const QeiRunStats eight = h.run(SchemeConfig::chaTlb(), 8);
    EXPECT_LT(eight.cycles * 2, one.cycles);
}

TEST(MultiCoreDeath, TooManyCoresPanics)
{
    MultiHarness h;

    EXPECT_DEATH(h.run(SchemeConfig::coreIntegrated(), 25),
                 "issuing cores");
}
