/**
 * Determinism contract of the parallel experiment engine: running the
 * (workload x scheme) matrix at --threads 8 must produce exactly the
 * same simulated numbers as --threads 1, because every cell owns a
 * private World rebuilt from the same seed.
 */

#include <gtest/gtest.h>

#include "bench_util.hh"

using namespace qei;
using namespace qei::bench;

namespace {

void
expectSameBaseline(const CoreRunResult& a, const CoreRunResult& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_DOUBLE_EQ(a.backendStallCycles, b.backendStallCycles);
    EXPECT_DOUBLE_EQ(a.frontendStallCycles, b.frontendStallCycles);
}

void
expectSameStats(const QeiRunStats& a, const QeiRunStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.queries, b.queries);
    EXPECT_EQ(a.coreInstructions, b.coreInstructions);
    EXPECT_EQ(a.mismatches, b.mismatches);
    EXPECT_EQ(a.exceptions, b.exceptions);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.microOps, b.microOps);
    EXPECT_EQ(a.remoteCompares, b.remoteCompares);
    EXPECT_DOUBLE_EQ(a.avgQstOccupancy, b.avgQstOccupancy);
    EXPECT_DOUBLE_EQ(a.maxInFlightObserved, b.maxInFlightObserved);
    // The latency breakdown is integer-total based, so it must also be
    // bit-identical across thread counts.
    EXPECT_EQ(a.breakdownQueries, b.breakdownQueries);
    EXPECT_EQ(a.breakdownEndToEnd, b.breakdownEndToEnd);
    ASSERT_EQ(a.breakdownCycles.size(), b.breakdownCycles.size());
    for (const auto& [component, cycles] : a.breakdownCycles) {
        ASSERT_TRUE(b.breakdownCycles.count(component)) << component;
        EXPECT_EQ(cycles, b.breakdownCycles.at(component))
            << component;
    }
}

/** Two workloads keep the test fast while still crossing workloads. */
std::vector<WorkloadFactory>
testFactories()
{
    auto all = makeWorkloadFactories();
    return {all[0], all[1]};
}

MatrixOptions
testMatrix(int threads)
{
    MatrixOptions matrix;
    matrix.queries = 300; // small but enough to exercise all schemes
    matrix.threads = threads;
    return matrix;
}

} // namespace

TEST(ParallelRuns, EightThreadsMatchesSerial)
{
    const auto serial =
        runWorkloadMatrix(testFactories(), testMatrix(1));
    const auto parallel =
        runWorkloadMatrix(testFactories(), testMatrix(8));

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t w = 0; w < serial.size(); ++w) {
        const WorkloadRun& s = serial[w];
        const WorkloadRun& p = parallel[w];
        EXPECT_EQ(s.name, p.name);
        expectSameBaseline(s.baseline, p.baseline);
        ASSERT_EQ(s.schemes.size(), p.schemes.size());
        for (const auto& [scheme, stats] : s.schemes) {
            ASSERT_TRUE(p.schemes.count(scheme))
                << "scheme missing in parallel run: " << scheme;
            expectSameStats(stats, p.schemes.at(scheme));
        }
    }
}

TEST(ParallelRuns, MatrixCoversAllSchemes)
{
    const auto runs = runWorkloadMatrix(testFactories(), testMatrix(4));
    ASSERT_EQ(runs.size(), 2u);
    for (const WorkloadRun& run : runs) {
        EXPECT_EQ(run.schemes.size(), SchemeConfig::allSchemes().size());
        EXPECT_GT(run.baseline.queries, 0u);
        for (const auto& [scheme, stats] : run.schemes) {
            EXPECT_EQ(stats.mismatches, 0u)
                << run.name << " / " << scheme;
            EXPECT_GT(run.speedup(stats), 0.0);
        }
    }
}

TEST(ParallelRuns, TraceEventCountsMatchAcrossThreadCounts)
{
    // Timeline capture must not perturb determinism: every per-cell
    // trace at --threads 8 carries exactly the events of --threads 1.
    MatrixOptions serial = testMatrix(1);
    serial.captureTrace = true;
    MatrixOptions parallel = testMatrix(8);
    parallel.captureTrace = true;

    const auto a = runWorkloadMatrix(testFactories(), serial);
    const auto b = runWorkloadMatrix(testFactories(), parallel);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t w = 0; w < a.size(); ++w) {
        ASSERT_EQ(a[w].traces.size(), b[w].traces.size());
        // Baseline + one per scheme, all armed.
        EXPECT_EQ(a[w].traces.size(),
                  1 + SchemeConfig::allSchemes().size());
        for (const auto& [cell, buf] : a[w].traces) {
            ASSERT_TRUE(b[w].traces.count(cell))
                << a[w].name << " / " << cell;
            const trace::TraceBuffer& other = b[w].traces.at(cell);
            EXPECT_EQ(buf.emitted, other.emitted)
                << a[w].name << " / " << cell;
            EXPECT_EQ(buf.events.size(), other.events.size())
                << a[w].name << " / " << cell;
            // With QEI_TRACING=OFF the sinks legitimately stay empty;
            // the equality checks above still hold (0 == 0).
            if (trace::kCompiledIn)
                EXPECT_GT(buf.emitted, 0u)
                    << a[w].name << " / " << cell;
        }
    }
}

TEST(ParallelRuns, HostPerfFieldsPopulated)
{
    const auto runs = runWorkloadMatrix(testFactories(), testMatrix(2));
    for (const WorkloadRun& run : runs) {
        EXPECT_GE(run.hostWallMs, 0.0);
        // One wall-time sample for the baseline plus one per scheme.
        EXPECT_EQ(run.cellWallMs.size(),
                  1 + SchemeConfig::allSchemes().size());
        EXPECT_TRUE(run.cellWallMs.count("baseline"));
    }
}
