/**
 * The perf-trajectory fold/check logic behind tools/qei-perf: folding
 * successive artifact sets into trajectory entries, round-tripping
 * them through JSON, and the regression gates (deterministic sim
 * metrics always, host metrics only on request).
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "validate/perf_trajectory.hh"

using namespace qei;
using namespace qei::validate;

namespace {

/** A minimal BENCH_*.json artifact with the fields qei-perf reads. */
Json
artifact(const char* bench, double mean_cycles,
         std::uint64_t queries, double wall_ms, double events_per_sec)
{
    Json a = Json::object();
    a["bench"] = bench;
    a["git_sha"] = "abc123";
    Json breakdown = Json::object();
    breakdown["mean_cycles_per_query"] = mean_cycles;
    breakdown["end_to_end_cycles"] = static_cast<std::uint64_t>(
        mean_cycles * static_cast<double>(queries));
    breakdown["queries"] = queries;
    a["breakdown"] = std::move(breakdown);
    a["host_wall_ms"] = wall_ms;
    Json host = Json::object();
    host["sim_events_per_sec"] = events_per_sec;
    a["host"] = std::move(host);
    return a;
}

} // namespace

TEST(PerfTrajectory, FoldsSuccessiveArtifactSetsIntoEntries)
{
    Json trajectory = emptyTrajectory();

    const std::vector<Json> setA{
        artifact("fig09_end_to_end", 120.0, 500, 900.0, 2.0e6),
        artifact("abl_open_loop", 310.0, 300, 1200.0, 1.5e6),
    };
    appendEntry(trajectory, foldArtifacts(setA, "run-1"));
    const std::vector<Json> setB{
        artifact("fig09_end_to_end", 119.0, 500, 850.0, 2.1e6),
        artifact("abl_open_loop", 312.0, 300, 1190.0, 1.6e6),
    };
    appendEntry(trajectory, foldArtifacts(setB, "run-2"));

    const auto entries = entriesOf(trajectory);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].label, "run-1");
    EXPECT_EQ(entries[1].label, "run-2");
    EXPECT_EQ(entries[0].gitSha, "abc123");
    ASSERT_EQ(entries[1].benches.size(), 2u);
    const PerfBenchSample& fig =
        entries[1].benches.at("fig09_end_to_end");
    EXPECT_DOUBLE_EQ(fig.meanCyclesPerQuery, 119.0);
    EXPECT_EQ(fig.queries, 500u);
    EXPECT_DOUBLE_EQ(fig.hostWallMs, 850.0);
    EXPECT_DOUBLE_EQ(fig.simEventsPerSec, 2.1e6);

    // Round trip: entryFromJson(toJson(e)) is the identity.
    const PerfEntry back = entryFromJson(toJson(entries[1]));
    EXPECT_EQ(back.label, entries[1].label);
    EXPECT_DOUBLE_EQ(
        back.benches.at("abl_open_loop").meanCyclesPerQuery, 312.0);
}

TEST(PerfTrajectory, CleanRunPassesTheGate)
{
    const PerfEntry base = foldArtifacts(
        {artifact("fig09_end_to_end", 120.0, 500, 900.0, 2.0e6)},
        "base");
    // 1% growth sits inside the default 2% tolerance.
    const PerfEntry cand = foldArtifacts(
        {artifact("fig09_end_to_end", 121.2, 500, 2000.0, 1.0e6)},
        "cand");
    const PerfCheckResult result = checkAgainst(base, cand);
    EXPECT_TRUE(result.ok);
    EXPECT_TRUE(result.regressions.empty());
}

TEST(PerfTrajectory, InjectedSimRegressionFailsTheGate)
{
    const PerfEntry base = foldArtifacts(
        {artifact("fig09_end_to_end", 120.0, 500, 900.0, 2.0e6)},
        "base");
    // +5% mean cycles/query: a model-side regression, deterministic,
    // must fail regardless of host tolerances.
    const PerfEntry cand = foldArtifacts(
        {artifact("fig09_end_to_end", 126.0, 500, 900.0, 2.0e6)},
        "cand");
    const PerfCheckResult result = checkAgainst(base, cand);
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_NE(result.regressions[0].find("fig09_end_to_end"),
              std::string::npos);
    EXPECT_NE(result.regressions[0].find("mean_cycles_per_query"),
              std::string::npos);
}

TEST(PerfTrajectory, QueryCountChangeIsANoteNotAGate)
{
    const PerfEntry base = foldArtifacts(
        {artifact("abl_open_loop", 310.0, 300, 900.0, 2.0e6)},
        "base");
    // Different query count: the workload configuration changed, so
    // the (wildly different) cycle count must not fire the gate.
    const PerfEntry cand = foldArtifacts(
        {artifact("abl_open_loop", 450.0, 1500, 900.0, 2.0e6)},
        "cand");
    const PerfCheckResult result = checkAgainst(base, cand);
    EXPECT_TRUE(result.ok);
    ASSERT_EQ(result.notes.size(), 1u);
    EXPECT_NE(result.notes[0].find("query count changed"),
              std::string::npos);
}

TEST(PerfTrajectory, HostMetricsGateOnlyWhenRequested)
{
    const PerfEntry base = foldArtifacts(
        {artifact("fig09_end_to_end", 120.0, 500, 1000.0, 2.0e6)},
        "base");
    const PerfEntry cand = foldArtifacts(
        {artifact("fig09_end_to_end", 120.0, 500, 1500.0, 1.0e6)},
        "cand");

    // Default: host metrics are informational, no gate.
    EXPECT_TRUE(checkAgainst(base, cand).ok);

    // Opt in with a 20% host tolerance: +50% wall and -50% event rate
    // both fire.
    PerfCheckConfig config;
    config.hostTolerance = 0.20;
    const PerfCheckResult gated = checkAgainst(base, cand, config);
    EXPECT_FALSE(gated.ok);
    EXPECT_EQ(gated.regressions.size(), 2u);
}

TEST(PerfTrajectory, BreakdownlessArtifactsGateOnSummedCycles)
{
    // Sweep ablations (abl_open_loop, abl_batch) have no top-level
    // breakdown block; their deterministic cost is the sum of the
    // per-point "cycles" fields, at any nesting depth.
    const auto sweep = [](const char* bench, double a, double b) {
        Json art = Json::object();
        art["bench"] = bench;
        Json points = Json::array();
        for (double c : {a, b}) {
            Json p = Json::object();
            p["load_pct"] = 50;
            p["cycles"] = c;
            points.push_back(std::move(p));
        }
        art["dpdk"] = std::move(points);
        return art;
    };

    const PerfEntry base =
        foldArtifacts({sweep("abl_open_loop", 10000.0, 20000.0)},
                      "base");
    EXPECT_EQ(base.benches.at("abl_open_loop").endToEndCycles, 30000u);
    EXPECT_DOUBLE_EQ(
        base.benches.at("abl_open_loop").meanCyclesPerQuery, 0.0);

    // Inside tolerance: +1% total cycles passes.
    const PerfEntry near =
        foldArtifacts({sweep("abl_open_loop", 10100.0, 20200.0)},
                      "near");
    EXPECT_TRUE(checkAgainst(base, near).ok);

    // +5% total cycles fires the fallback gate.
    const PerfEntry slow =
        foldArtifacts({sweep("abl_open_loop", 10500.0, 21000.0)},
                      "slow");
    const PerfCheckResult result = checkAgainst(base, slow);
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_NE(result.regressions[0].find("end_to_end_cycles"),
              std::string::npos);
}

TEST(PerfTrajectory, MissingAndNewBenchesAreNotes)
{
    const PerfEntry base = foldArtifacts(
        {artifact("fig09_end_to_end", 120.0, 500, 900.0, 2.0e6)},
        "base");
    const PerfEntry cand = foldArtifacts(
        {artifact("abl_batch", 80.0, 192, 400.0, 3.0e6)}, "cand");
    const PerfCheckResult result = checkAgainst(base, cand);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.notes.size(), 2u);
}

TEST(PerfTrajectory, MalformedTrajectoryThrows)
{
    EXPECT_THROW(entriesOf(Json::object()), std::runtime_error);
    EXPECT_THROW(entriesOf(Json(3)), std::runtime_error);
    EXPECT_NO_THROW(entriesOf(emptyTrajectory()));
}
