// Offload-planner subsystem tests: cost-model JSON round-trips against
// the committed calibration (perf/cost_model.json), planner-vs-static
// cycle and checksum identity on every workload, the synthetic-model
// core-execute path, sharded deployments under fault injection and
// flush recovery, and host-thread-count invariance of the planner-
// enabled experiment matrix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_config.hh"
#include "qei/driver.hh"
#include "qei/planner.hh"
#include "workloads/workload.hh"

using namespace qei;
using namespace qei::bench;

namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Max |cycles/query| difference over the union of both models. */
double
modelDelta(const CostModel& a, const CostModel& b)
{
    double worst = 0.0;
    auto fold = [&](const CostModel& x, const CostModel& y) {
        for (const auto& [name, costs] : x.workloads()) {
            worst = std::max(worst,
                             std::abs(costs.core - y.coreCost(name)));
            for (const auto& [scheme, cycles] : costs.schemes) {
                worst = std::max(
                    worst,
                    std::abs(cycles - y.schemeCost(name, scheme)));
            }
        }
    };
    fold(a, b);
    fold(b, a);
    return worst;
}

// ---------------------------------------------------------------
// CostModel: JSON round-trip and the committed calibration
// ---------------------------------------------------------------

TEST(CostModel, JsonRoundTripIsLossless)
{
    const CostModel& builtin = CostModel::builtin();
    const CostModel restored = CostModel::fromJson(builtin.toJson());
    EXPECT_EQ(modelDelta(builtin, restored), 0.0);
    EXPECT_EQ(restored.workloads().size(), 5u);
}

TEST(CostModel, CommittedFileMatchesBuiltin)
{
    // The same invariant CI enforces via `qei-calibrate --check`: the
    // committed perf/cost_model.json and CostModel::builtin() are two
    // renditions of one calibration.
    const std::string path =
        std::string(QEI_SOURCE_DIR) + "/perf/cost_model.json";
    const CostModel committed =
        CostModel::fromJson(Json::parse(readFile(path)));
    EXPECT_LE(modelDelta(CostModel::builtin(), committed), 1e-3);
}

TEST(CostModel, BestSchemeFollowsCalibration)
{
    const CostModel& m = CostModel::builtin();
    // CHA-TLB is the calibrated best on four workloads; flann's probe
    // tables are the one case where core-integration wins.
    for (const char* w : {"dpdk", "jvm", "rocksdb", "snort"})
        EXPECT_EQ(m.bestScheme(w), "CHA-TLB") << w;
    EXPECT_EQ(m.bestScheme("flann"), "Core-integrated");
    // The software walk never beats the best accelerator — the reason
    // the calibrated planner can only tie the best static scheme on a
    // homogeneous trace.
    for (const auto& [name, costs] : m.workloads()) {
        (void)costs;
        EXPECT_GT(m.coreCost(name), m.bestSchemeCost(name)) << name;
    }
}

TEST(CostModel, UnknownWorkloadIsHarmless)
{
    const CostModel& m = CostModel::builtin();
    EXPECT_FALSE(m.knows("memcached"));
    EXPECT_EQ(m.coreCost("memcached"), 0.0);
    EXPECT_EQ(m.bestScheme("memcached"), "");
    EXPECT_EQ(m.schemeCost("dpdk", "no-such-scheme"), 0.0);
}

// ---------------------------------------------------------------
// Mode parsing and environment inheritance
// ---------------------------------------------------------------

TEST(PlannerMode, ParseAndRender)
{
    EXPECT_EQ(parsePlannerMode("static"), PlannerMode::Static);
    EXPECT_EQ(parsePlannerMode("cost"), PlannerMode::Cost);
    EXPECT_EQ(parsePlannerMode("shard"), PlannerMode::Shard);
    EXPECT_STREQ(toString(PlannerMode::Inherit), "inherit");
    EXPECT_STREQ(toString(PlannerMode::Cost), "cost");
}

TEST(PlannerModeDeathTest, UnknownModeIsFatal)
{
    EXPECT_DEATH(parsePlannerMode("bogus"), "unknown planner mode");
}

TEST(PlannerMode, InheritResolvesAgainstEnvironment)
{
    ::unsetenv("QEI_PLANNER");
    EXPECT_EQ(plannerModeFromEnv(), PlannerMode::Static);

    ::setenv("QEI_PLANNER", "cost", 1);
    EXPECT_EQ(plannerModeFromEnv(), PlannerMode::Cost);

    PlannerConfig inherit;
    EXPECT_EQ(inherit.resolvedMode(), PlannerMode::Cost);
    // A cell that pins Static explicitly is immune to the flag.
    PlannerConfig pinned;
    pinned.mode = PlannerMode::Static;
    EXPECT_EQ(pinned.resolvedMode(), PlannerMode::Static);

    ::unsetenv("QEI_PLANNER");
    EXPECT_EQ(inherit.resolvedMode(), PlannerMode::Static);
}

// ---------------------------------------------------------------
// plannerTopology: the deployments the planner proposes
// ---------------------------------------------------------------

TEST(PlannerTopology, SingleClassDeploysBestFamily)
{
    const Topology dpdk = plannerTopology(PlannerConfig::cost("dpdk"));
    EXPECT_EQ(dpdk.name(), "planner-cost");
    EXPECT_EQ(dpdk.params().name(), "CHA-TLB");
    EXPECT_FALSE(dpdk.heterogeneous());

    const Topology flann =
        plannerTopology(PlannerConfig::cost("flann"));
    EXPECT_EQ(flann.params().name(), "Core-integrated");

    // Unknown workloads fall back to the paper's headline scheme.
    const Topology unknown =
        plannerTopology(PlannerConfig::cost("memcached"));
    EXPECT_EQ(unknown.params().name(), "CHA-TLB");
}

TEST(PlannerTopology, ShardModeBuildsShardedDeployment)
{
    const Topology topo =
        plannerTopology(PlannerConfig::shard("dpdk", 8, true));
    EXPECT_EQ(topo.name(), "CHA-TLB-shard8+steal");
    EXPECT_EQ(topo.placements().size(), 8u);
}

TEST(PlannerTopology, MixedClassesBuildHeterogeneousUnion)
{
    const std::vector<ClassRange> classes{
        {0x1000, 0x2000, "dpdk"},
        {0x8000, 0x9000, "flann"},
    };
    const Topology topo =
        plannerTopology(PlannerConfig::mixed(classes));
    EXPECT_EQ(topo.name(), "planner-mix");
    EXPECT_TRUE(topo.heterogeneous());
    // 24 CHA-TLB slices for dpdk plus one core-integrated instance
    // for flann.
    EXPECT_EQ(topo.placements().size(), 25u);

    OffloadPlanner planner(PlannerConfig::mixed(classes));
    EXPECT_EQ(planner.classify(0x1800), "dpdk");
    EXPECT_EQ(planner.classify(0x8800), "flann");
    // Out-of-range keys fall back to the single-class name (empty
    // here), never a crash.
    EXPECT_EQ(planner.classify(0x5000), "");
}

// ---------------------------------------------------------------
// End-to-end: planner vs static, core-execute, shards, faults
// ---------------------------------------------------------------

struct PreparedWorkload
{
    std::unique_ptr<World> world;
    std::unique_ptr<Workload> workload;
    Prepared prep;
};

PreparedWorkload
prepareOne(std::size_t idx, std::size_t queries, std::uint64_t seed = 7,
           const ChipConfig& chip = defaultChip())
{
    PreparedWorkload out;
    out.world = std::make_unique<World>(seed, chip);
    out.workload = makeWorkloadFactories()[idx]();
    out.workload->build(*out.world);
    out.prep = out.workload->prepare(*out.world, queries);
    return out;
}

TEST(PlannerRun, CostModeIsCycleIdenticalToBestStatic)
{
    const std::vector<std::string> names{"dpdk", "jvm", "rocksdb",
                                         "snort", "flann"};
    const std::vector<std::size_t> queries{192, 96, 48, 12, 32};
    for (std::size_t w = 0; w < names.size(); ++w) {
        PreparedWorkload pw = prepareOne(w, queries[w]);
        const PlannerConfig cfg = PlannerConfig::cost(names[w]);
        const Topology best(plannerTopology(cfg).params());

        const QeiRunStats staticRun =
            runQei(*pw.world, pw.prep, DriverConfig(best));
        const QeiRunStats plannerRun = runQei(
            *pw.world, pw.prep,
            DriverConfig(plannerTopology(cfg)).withPlanner(cfg));

        // The calibrated planner deploys the best family's canonical
        // topology and keeps nothing on the core, so the run is
        // cycle-identical — not merely close.
        EXPECT_EQ(plannerRun.cycles, staticRun.cycles) << names[w];
        EXPECT_EQ(plannerRun.resultChecksum, staticRun.resultChecksum)
            << names[w];
        EXPECT_EQ(plannerRun.mismatches, 0u) << names[w];
        EXPECT_EQ(plannerRun.plannerDecisions,
                  plannerRun.queries)
            << names[w];
        EXPECT_EQ(plannerRun.plannerCoreExecutes, 0u) << names[w];
        // The static run carries no planner, so its counters are 0.
        EXPECT_EQ(staticRun.plannerDecisions, 0u) << names[w];
    }
}

TEST(PlannerRun, SyntheticModelKeepsQueriesOnCore)
{
    // A model that prices the software walk below the deployed
    // accelerator forces the core-execute path; answers must not
    // change (the core runs the same reference walk).
    auto model = std::make_shared<CostModel>();
    model->set("dpdk", {1.0, {{"CHA-TLB", 100.0}}});

    PreparedWorkload pw = prepareOne(0, 192);
    const QeiRunStats accel =
        runQei(*pw.world, pw.prep, DriverConfig(Topology::chaTlb()));

    PlannerConfig cfg = PlannerConfig::cost("dpdk");
    cfg.model = model;
    const QeiRunStats onCore =
        runQei(*pw.world, pw.prep,
               DriverConfig(Topology::chaTlb()).withPlanner(cfg));

    EXPECT_EQ(onCore.plannerCoreExecutes, onCore.queries);
    EXPECT_EQ(onCore.mismatches, 0u);
    EXPECT_EQ(onCore.resultChecksum, accel.resultChecksum);
    EXPECT_GT(onCore.cycles, 0u);
    // Core execution is planned, not a fault: the software-fallback
    // recovery counter must stay untouched.
    EXPECT_EQ(onCore.swFallbacks, 0u);
}

TEST(PlannerRun, ShardedDeploymentSurvivesFaultsAndFlushes)
{
    // Clean single-deployment reference.
    PreparedWorkload clean = prepareOne(0, 192);
    const QeiRunStats reference = runQei(
        *clean.world, clean.prep, DriverConfig(Topology::chaTlb()));

    // Sharded deployment under page faults, bad headers, and periodic
    // interrupt flushes: recovery must reconstruct identical results.
    ChipConfig chip = defaultChip();
    chip.faults = parseFaultSpec("pf=0.05,bh=0.02,flush=20000");
    PreparedWorkload faulty = prepareOne(0, 192, 7, chip);
    const PlannerConfig cfg = PlannerConfig::shard("dpdk", 4, true);
    const QeiRunStats sharded =
        runQei(*faulty.world, faulty.prep,
               DriverConfig(plannerTopology(cfg)).withPlanner(cfg));

    EXPECT_GT(sharded.faultsInjected, 0u);
    EXPECT_GT(sharded.swFallbacks, 0u);
    EXPECT_EQ(sharded.mismatches, 0u);
    EXPECT_EQ(sharded.resultChecksum, reference.resultChecksum);
}

TEST(PlannerRun, ShardCountsAndBatchingPreserveResults)
{
    PreparedWorkload pw = prepareOne(0, 192);
    const QeiRunStats reference =
        runQei(*pw.world, pw.prep, DriverConfig(Topology::chaTlb()));

    for (int shards : {1, 8}) {
        const PlannerConfig cfg =
            PlannerConfig::shard("dpdk", shards, true);
        const QeiRunStats run =
            runQei(*pw.world, pw.prep,
                   DriverConfig(plannerTopology(cfg))
                       .withPlanner(cfg)
                       .withMode(QueryMode::NonBlocking));
        EXPECT_EQ(run.resultChecksum, reference.resultChecksum)
            << shards << " shards";
        EXPECT_EQ(run.mismatches, 0u);
    }

    // QUERY_BATCH over a sharded deployment.
    const PlannerConfig cfg = PlannerConfig::shard("dpdk", 8, true);
    const QeiRunStats batched =
        runQei(*pw.world, pw.prep,
               DriverConfig(plannerTopology(cfg))
                   .withPlanner(cfg)
                   .withBatch(BatchConfig{
                       8, BatchReorder::ByKeyLocality, true}));
    EXPECT_GT(batched.batches, 0u);
    EXPECT_EQ(batched.resultChecksum, reference.resultChecksum);
    EXPECT_EQ(batched.mismatches, 0u);
}

// ---------------------------------------------------------------
// Matrix determinism with the planner engaged via QEI_PLANNER
// ---------------------------------------------------------------

TEST(PlannerMatrix, ThreadCountInvariantUnderCostMode)
{
    // `--planner cost` reaches matrix cells through QEI_PLANNER +
    // Inherit. Device-indirect prices above the software walk on
    // rocksdb and snort, so those cells core-execute — the decision
    // hash must be a pure function of the query, never of host
    // scheduling.
    ::setenv("QEI_PLANNER", "cost", 1);

    MatrixOptions options;
    options.queries = 48;
    options.seed = 7;
    options.topologies = {Topology::chaTlb(),
                          Topology::deviceIndirect()};

    options.threads = 1;
    const std::vector<WorkloadRun> serial =
        runWorkloadMatrix(makeWorkloadFactories(), options);
    options.threads = 8;
    const std::vector<WorkloadRun> parallel =
        runWorkloadMatrix(makeWorkloadFactories(), options);
    ::unsetenv("QEI_PLANNER");

    ASSERT_EQ(serial.size(), parallel.size());
    std::uint64_t coreExecutes = 0;
    for (std::size_t w = 0; w < serial.size(); ++w) {
        for (const auto& [scheme, stats] : serial[w].schemes) {
            const auto it = parallel[w].schemes.find(scheme);
            ASSERT_NE(it, parallel[w].schemes.end());
            EXPECT_EQ(stats.cycles, it->second.cycles)
                << serial[w].name << "/" << scheme;
            EXPECT_EQ(stats.resultChecksum,
                      it->second.resultChecksum)
                << serial[w].name << "/" << scheme;
            EXPECT_EQ(stats.plannerCoreExecutes,
                      it->second.plannerCoreExecutes)
                << serial[w].name << "/" << scheme;
            EXPECT_EQ(stats.mismatches, 0u);
            coreExecutes += stats.plannerCoreExecutes;
        }
    }
    // The cost model really engaged somewhere in the matrix.
    EXPECT_GT(coreExecutes, 0u);
}

} // namespace
