#include <gtest/gtest.h>

#include "power/area_model.hh"
#include "power/energy_model.hh"

using namespace qei;

TEST(AreaModel, Qei10MatchesPaperBand)
{
    const AreaModel model;
    const AreaReport r = model.qei10();
    // Paper (Tab. III): 0.1752 mm^2, 10.8984 mW.
    EXPECT_NEAR(r.totalAreaMm2(), 0.1752, 0.1752 * 0.25);
    EXPECT_NEAR(r.totalStaticPowerMw(), 10.8984, 10.8984 * 0.3);
}

TEST(AreaModel, Qei10TlbMatchesPaperBand)
{
    const AreaModel model;
    const AreaReport r = model.qei10WithTlb();
    // Paper: 0.5730 mm^2, 30.9049 mW.
    EXPECT_NEAR(r.totalAreaMm2(), 0.5730, 0.5730 * 0.25);
    EXPECT_NEAR(r.totalStaticPowerMw(), 30.9049, 30.9049 * 0.3);
}

TEST(AreaModel, Qei240MatchesPaperBand)
{
    const AreaModel model;
    const AreaReport r = model.qei240();
    // Paper: 1.0901 mm^2, 20.8764 mW.
    EXPECT_NEAR(r.totalAreaMm2(), 1.0901, 1.0901 * 0.25);
    EXPECT_NEAR(r.totalStaticPowerMw(), 20.8764, 20.8764 * 0.35);
}

TEST(AreaModel, TlbDominatesItsDelta)
{
    const AreaModel model;
    const double delta = model.qei10WithTlb().totalAreaMm2() -
                         model.qei10().totalAreaMm2();
    // The CAM TLB is the whole difference.
    EXPECT_NEAR(delta, 0.375, 0.05);
}

TEST(AreaModel, AreaMonotonicInQstEntries)
{
    const AreaModel model;
    double prev = 0.0;
    for (int entries : {5, 10, 40, 120, 240}) {
        QeiAreaInputs in;
        in.qstEntries = entries;
        const double area =
            model.report("sweep", in).totalAreaMm2();
        EXPECT_GT(area, prev);
        prev = area;
    }
}

TEST(AreaModel, DeviceGatingReducesLeakageDensity)
{
    const AreaModel model;
    QeiAreaInputs plain;
    QeiAreaInputs gated;
    gated.deviceClass = true;
    const AreaReport a = model.report("plain", plain);
    const AreaReport b = model.report("gated", gated);
    // Same base blocks leak less per mm^2 when gated.
    const double densA =
        a.totalStaticPowerMw() / a.totalAreaMm2();
    const double densB =
        b.totalStaticPowerMw() / b.totalAreaMm2();
    EXPECT_LT(densB, densA);
}

TEST(AreaModel, EveryItemNonNegative)
{
    const AreaModel model;
    for (const AreaReport& r :
         {model.qei10(), model.qei10WithTlb(), model.qei240()}) {
        for (const auto& item : r.items) {
            EXPECT_GE(item.areaMm2, 0.0) << item.name;
            EXPECT_GE(item.staticPowerMw, 0.0) << item.name;
        }
    }
}

TEST(EnergyModel, PerQueryDividesByQueries)
{
    EnergyModel model;
    EnergyInputs in;
    in.coreInstructions = 1000;
    in.queries = 10;
    const EnergyBreakdown b = model.perQuery(in);
    EXPECT_DOUBLE_EQ(b.corePj,
                     100.0 * model.params().coreInstrPj);
}

TEST(EnergyModel, ZeroQueriesIsZero)
{
    EnergyModel model;
    EnergyInputs in;
    in.coreInstructions = 1000;
    in.queries = 0;
    EXPECT_DOUBLE_EQ(model.perQuery(in).totalPj(), 0.0);
}

TEST(EnergyModel, TotalsSumComponents)
{
    EnergyModel model;
    EnergyInputs in;
    in.queries = 1;
    in.coreInstructions = 10;
    in.acceleratorMicroOps = 5;
    in.comparatorBytes = 64;
    in.activity.l1Accesses = 3;
    in.activity.dramAccesses = 1;
    in.activity.nocBytes = 100;
    const EnergyBreakdown b = model.perQuery(in);
    EXPECT_DOUBLE_EQ(b.totalPj(), b.corePj + b.cachePj + b.dramPj +
                                      b.nocPj + b.acceleratorPj);
    EXPECT_GT(b.acceleratorPj, 0.0);
    EXPECT_GT(b.dramPj, 0.0);
}

TEST(ChipActivity, CaptureAndSubtract)
{
    MemoryHierarchy memory;
    const ChipActivity before = ChipActivity::capture(memory);
    memory.coreAccess(0, 0x1000, false, 0);
    memory.coreAccess(0, 0x1000, false, 10);
    const ChipActivity after = ChipActivity::capture(memory);
    const ChipActivity delta = after - before;
    EXPECT_EQ(delta.l1Accesses, 2u);
    EXPECT_EQ(delta.dramAccesses, 1u);
    EXPECT_GT(delta.nocBytes, 0u);
}
