// Cross-cutting property suites: parameterized functional-equivalence
// sweeps (every structure type x several key lengths x random query
// mixes, QEI vs software reference) and timing-model invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "ds/bst.hh"
#include "ds/chained_hash.hh"
#include "ds/cuckoo_hash.hh"
#include "ds/linked_list.hh"
#include "ds/skip_list.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

enum class Kind { LinkedList, Bst, SkipList, ChainedHash, CuckooHash };

const char*
kindName(Kind k)
{
    switch (k) {
      case Kind::LinkedList:  return "linked-list";
      case Kind::Bst:         return "bst";
      case Kind::SkipList:    return "skip-list";
      case Kind::ChainedHash: return "chained-hash";
      case Kind::CuckooHash:  return "cuckoo-hash";
    }
    return "?";
}

/** Build a structure of @p kind and emit matched query streams. */
Prepared
buildAndPrepare(World& world, Kind kind, std::size_t key_len,
                std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<Key, std::uint64_t>> items;
    const std::size_t count = kind == Kind::LinkedList ? 40 : 250;
    for (std::size_t i = 0; i < count; ++i)
        items.emplace_back(randomKey(rng, key_len), 5000 + i);

    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 15;

    auto addJobs = [&](auto& ds, const auto& universe) {
        for (int q = 0; q < 60; ++q) {
            const Key key =
                q % 4 == 0
                    ? randomKey(rng, key_len)
                    : universe[rng.below(universe.size())].first;
            QueryTrace trace = ds.query(key);
            QueryJob job;
            job.headerAddr = ds.headerAddr();
            job.keyAddr = ds.stageKey(key);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = trace.found;
            job.expectValue = trace.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(trace));
        }
    };

    switch (kind) {
      case Kind::LinkedList: {
        auto ds = std::make_shared<SimLinkedList>(world.vm, items);
        addJobs(*ds, items);
        break;
      }
      case Kind::Bst: {
        auto ds = std::make_shared<SimBst>(world.vm, items);
        addJobs(*ds, items);
        break;
      }
      case Kind::SkipList: {
        auto ds = std::make_shared<SimSkipList>(world.vm, items);
        addJobs(*ds, items);
        break;
      }
      case Kind::ChainedHash: {
        auto ds = std::make_shared<SimChainedHash>(world.vm, items,
                                                   128);
        addJobs(*ds, items);
        break;
      }
      case Kind::CuckooHash: {
        auto ds = std::make_shared<SimCuckooHash>(
            world.vm, 128, static_cast<std::uint32_t>(key_len));
        std::vector<std::pair<Key, std::uint64_t>> installed;
        for (const auto& [k, v] : items) {
            if (ds->insert(k, v))
                installed.emplace_back(k, v);
        }
        addJobs(*ds, installed);
        break;
      }
    }
    return prep;
}

} // namespace

class QeiEquivalence
    : public ::testing::TestWithParam<std::tuple<Kind, std::size_t>>
{
};

TEST_P(QeiEquivalence, CoreIntegratedMatchesReference)
{
    const auto [kind, keyLen] = GetParam();
    World world(static_cast<std::uint64_t>(keyLen) * 31 +
                static_cast<std::uint64_t>(kind));
    const Prepared prep = buildAndPrepare(world, kind, keyLen, 77);
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(stats.mismatches, 0u) << kindName(kind);
    EXPECT_EQ(stats.exceptions, 0u) << kindName(kind);
}

TEST_P(QeiEquivalence, ChaTlbMatchesReference)
{
    const auto [kind, keyLen] = GetParam();
    World world(static_cast<std::uint64_t>(keyLen) * 37 +
                static_cast<std::uint64_t>(kind));
    const Prepared prep = buildAndPrepare(world, kind, keyLen, 78);
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::chaTlb()));
    EXPECT_EQ(stats.mismatches, 0u) << kindName(kind);
}

TEST_P(QeiEquivalence, NonBlockingMatchesReference)
{
    const auto [kind, keyLen] = GetParam();
    World world(static_cast<std::uint64_t>(keyLen) * 41 +
                static_cast<std::uint64_t>(kind));
    const Prepared prep = buildAndPrepare(world, kind, keyLen, 79);
    const QeiRunStats stats =
        runQei(world, prep, DriverConfig(SchemeConfig::deviceDirect()).withMode(QueryMode::NonBlocking).withPollBatch(24));
    EXPECT_EQ(stats.mismatches, 0u) << kindName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllStructuresAndKeys, QeiEquivalence,
    ::testing::Combine(::testing::Values(Kind::LinkedList, Kind::Bst,
                                         Kind::SkipList,
                                         Kind::ChainedHash,
                                         Kind::CuckooHash),
                       ::testing::Values(std::size_t{8},
                                         std::size_t{16},
                                         std::size_t{40},
                                         std::size_t{100})));

// -- Timing invariants ---------------------------------------------

TEST(TimingInvariants, MoreItemsMeansMoreBaselineCycles)
{
    // A longer linked list costs strictly more to search exhaustively.
    Cycles prev = 0;
    for (std::size_t n : {8u, 32u, 128u}) {
        World world(5);
        Rng rng(9);
        std::vector<std::pair<Key, std::uint64_t>> items;
        for (std::size_t i = 0; i < n; ++i)
            items.emplace_back(randomKey(rng, 16), i);
        SimLinkedList ll(world.vm, items);
        Prepared prep;
        prep.profile.nonQueryInstrPerOp = 10;
        for (int q = 0; q < 10; ++q) {
            QueryTrace t = ll.query(randomKey(rng, 16)); // miss: full walk
            QueryJob job;
            job.headerAddr = ll.headerAddr();
            job.keyAddr = ll.stageKey(randomKey(rng, 16));
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(t));
        }
        const CoreRunResult base = runBaseline(world, prep);
        EXPECT_GT(base.cycles, prev);
        prev = base.cycles;
    }
}

TEST(TimingInvariants, QstOccupancyWithinCapacityAcrossSchemes)
{
    World world(6);
    Rng rng(10);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 300; ++i)
        items.emplace_back(randomKey(rng, 16), i);
    SimChainedHash ch(world.vm, items, 128);
    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 5;
    for (int q = 0; q < 60; ++q) {
        const Key& key = items[rng.below(items.size())].first;
        QueryTrace t = ch.query(key);
        QueryJob job;
        job.headerAddr = ch.headerAddr();
        job.keyAddr = ch.stageKey(key);
        job.resultAddr = world.vm.alloc(16, 16);
        job.expectFound = t.found;
        job.expectValue = t.resultValue;
        prep.jobs.push_back(job);
        prep.traces.push_back(std::move(t));
    }
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        EXPECT_LE(stats.avgQstOccupancy,
                  static_cast<double>(scheme.qstEntries))
            << scheme.name();
    }
}

TEST(TimingInvariants, DeterministicAcrossIdenticalRuns)
{
    auto once = []() {
        World world(123);
        Rng rng(11);
        std::vector<std::pair<Key, std::uint64_t>> items;
        for (int i = 0; i < 200; ++i)
            items.emplace_back(randomKey(rng, 16), i);
        SimChainedHash ch(world.vm, items, 64);
        Prepared prep;
        prep.profile.nonQueryInstrPerOp = 12;
        for (int q = 0; q < 40; ++q) {
            const Key& key = items[rng.below(items.size())].first;
            QueryTrace t = ch.query(key);
            QueryJob job;
            job.headerAddr = ch.headerAddr();
            job.keyAddr = ch.stageKey(key);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = t.found;
            job.expectValue = t.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(t));
        }
        return runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()))
            .cycles;
    };
    EXPECT_EQ(once(), once());
}
