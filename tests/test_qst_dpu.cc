#include <gtest/gtest.h>

#include "qei/dpu.hh"
#include "qei/qst.hh"

using namespace qei;

TEST(Qst, AllocatesFirstEmptySlot)
{
    QueryStateTable qst(3);
    EXPECT_EQ(qst.allocate(), 0);
    EXPECT_EQ(qst.allocate(), 1);
    qst.release(0);
    EXPECT_EQ(qst.allocate(), 0); // first empty, not next
}

TEST(Qst, FullReturnsMinusOne)
{
    QueryStateTable qst(2);
    qst.allocate();
    qst.allocate();
    EXPECT_TRUE(qst.full());
    EXPECT_EQ(qst.allocate(), -1);
}

TEST(Qst, OccupancyTracksAllocations)
{
    QueryStateTable qst(4);
    EXPECT_EQ(qst.occupied(), 0u);
    qst.allocate();
    qst.allocate();
    EXPECT_EQ(qst.occupied(), 2u);
    qst.release(0);
    EXPECT_EQ(qst.occupied(), 1u);
}

TEST(Qst, ReleaseResetsEntryState)
{
    QueryStateTable qst(2);
    const int id = qst.allocate();
    qst.at(id).regs[3] = 42;
    qst.at(id).keyStaged = true;
    qst.release(id);
    EXPECT_EQ(qst.at(id).phase, QstPhase::Idle);
    EXPECT_EQ(qst.at(id).regs[3], 0u);
    EXPECT_FALSE(qst.at(id).keyStaged);
}

TEST(Qst, ActiveIdsListsNonIdle)
{
    QueryStateTable qst(4);
    qst.allocate(); // 0
    qst.allocate(); // 1
    qst.allocate(); // 2
    qst.release(1);
    EXPECT_EQ(qst.activeIds(), (std::vector<int>{0, 2}));
}

TEST(QstDeath, BadIdDies)
{
    QueryStateTable qst(2);
    EXPECT_DEATH((void)qst.at(5), "out of range");
}

TEST(UnitPool, ServesIdleUnitImmediately)
{
    UnitPool pool("p", 2);
    EXPECT_EQ(pool.acquire(100, 3), 103u);
}

TEST(UnitPool, ParallelUnitsDoNotQueue)
{
    UnitPool pool("p", 2);
    EXPECT_EQ(pool.acquire(0, 10), 10u);
    EXPECT_EQ(pool.acquire(0, 10), 10u); // second unit
    EXPECT_EQ(pool.acquire(0, 10), 20u); // queues behind one
}

TEST(UnitPool, TracksOpsAndBusy)
{
    UnitPool pool("p", 1);
    pool.acquire(0, 5);
    pool.acquire(0, 5);
    EXPECT_EQ(pool.ops(), 2u);
    EXPECT_EQ(pool.busyCycles(), 10u);
    EXPECT_GT(pool.queueDelay().max(), 0.0);
}

TEST(UnitPool, ResetFreesUnits)
{
    UnitPool pool("p", 1);
    pool.acquire(0, 1000);
    pool.reset();
    EXPECT_EQ(pool.acquire(0, 1), 1u);
}

TEST(Dpu, CompareScalesWithBytes)
{
    DataProcessingUnit dpu;
    const Cycles small = dpu.compare(0, 8);
    dpu.reset();
    const Cycles big = dpu.compare(0, 64);
    EXPECT_EQ(small, 1u);
    EXPECT_EQ(big, 8u); // 64 bits per cycle
}

TEST(Dpu, HashScalesWithBytes)
{
    DataProcessingUnit dpu;
    EXPECT_EQ(dpu.hashKey(0, 16), 2u);
}

TEST(Dpu, AluSingleCycle)
{
    DataProcessingUnit dpu;
    EXPECT_EQ(dpu.alu(7), 8u);
}

TEST(RemoteComparators, PerTilePools)
{
    RemoteComparators cmps(4, 2);
    // Tile 0's pair: two fit, third queues.
    EXPECT_EQ(cmps.compare(0, 0, 8), 1u);
    EXPECT_EQ(cmps.compare(0, 0, 8), 1u);
    EXPECT_EQ(cmps.compare(0, 0, 8), 2u);
    // A different tile is unaffected.
    EXPECT_EQ(cmps.compare(3, 0, 8), 1u);
    EXPECT_EQ(cmps.totalOps(), 4u);
}

TEST(RemoteComparatorsDeath, BadTileDies)
{
    RemoteComparators cmps(2, 2);
    EXPECT_DEATH((void)cmps.compare(2, 0, 8), "out of range");
}
