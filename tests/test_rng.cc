#include <gtest/gtest.h>

#include "common/random.hh"

using namespace qei;

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, InRangeInclusive)
{
    Rng rng(7);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.inRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(7);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    int counts[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.below(8)];
    for (int c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 8.0, n * 0.01);
}
