#include <gtest/gtest.h>

#include <cstring>

#include "mem/sim_memory.hh"

using namespace qei;

TEST(SimMemory, ZeroFilledByDefault)
{
    SimMemory mem(1 << 20);
    std::uint8_t buf[16] = {0xFF};
    mem.read(0x100, buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(SimMemory, WriteReadRoundtrip)
{
    SimMemory mem(1 << 20);
    const char* msg = "query engine interface";
    mem.write(0x40, msg, std::strlen(msg) + 1);
    char out[32];
    mem.read(0x40, out, std::strlen(msg) + 1);
    EXPECT_STREQ(out, msg);
}

TEST(SimMemory, CrossPageAccess)
{
    SimMemory mem(1 << 20);
    std::uint8_t pattern[256];
    for (std::size_t i = 0; i < sizeof(pattern); ++i)
        pattern[i] = static_cast<std::uint8_t>(i);
    const Addr addr = kPageBytes - 100; // straddles page 0 and 1
    mem.write(addr, pattern, sizeof(pattern));
    std::uint8_t out[256];
    mem.read(addr, out, sizeof(out));
    EXPECT_EQ(std::memcmp(pattern, out, sizeof(pattern)), 0);
}

TEST(SimMemory, TypedAccessors)
{
    SimMemory mem(1 << 20);
    mem.write<std::uint64_t>(0x200, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(mem.read<std::uint64_t>(0x200), 0xDEADBEEFCAFEF00DULL);
    mem.write<std::uint16_t>(0x300, 0xBEEF);
    EXPECT_EQ(mem.read<std::uint16_t>(0x300), 0xBEEF);
}

TEST(SimMemory, FillSetsBytes)
{
    SimMemory mem(1 << 20);
    mem.fill(0x1000, 0xAB, 100);
    for (Addr a = 0x1000; a < 0x1064; ++a)
        EXPECT_EQ(mem.read<std::uint8_t>(a), 0xAB);
    EXPECT_EQ(mem.read<std::uint8_t>(0x1064), 0);
}

TEST(SimMemory, LazyPageMaterialisation)
{
    SimMemory mem(1ULL << 40); // a TB-scale space costs nothing
    EXPECT_EQ(mem.touchedPages(), 0u);
    mem.write<std::uint8_t>(0x12345678, 1);
    EXPECT_EQ(mem.touchedPages(), 1u);
    std::uint8_t b;
    mem.read(0x9999999, &b, 1); // read of untouched page: no alloc
    EXPECT_EQ(mem.touchedPages(), 1u);
}

TEST(SimMemoryDeath, OutOfBoundsPanics)
{
    SimMemory mem(4096);
    std::uint8_t b = 0;
    EXPECT_DEATH(mem.write(4096, &b, 1), "out of");
}

TEST(SimMemoryDeath, WrapAroundPanics)
{
    SimMemory mem(1 << 20);
    std::uint8_t b = 0;
    EXPECT_DEATH(mem.write(~Addr{0}, &b, 2), "out of");
}
