#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace qei;

TEST(Counter, StartsAtZero)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, IncrementsByAmount)
{
    Counter c;
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
}

TEST(Counter, Resets)
{
    Counter c;
    c.inc(10);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMinMaxMean)
{
    ScalarStat s;
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(ScalarStat, EmptyMeanIsZero)
{
    ScalarStat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(ScalarStat, NegativeSamples)
{
    ScalarStat s;
    s.sample(-3.0);
    s.sample(1.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(ScalarStat, ResetLeavesMinMaxDefined)
{
    ScalarStat s;
    s.sample(-7.0);
    s.sample(42.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    // The first sample after a reset must re-arm min/max rather than
    // compare against stale extrema from before the reset.
    s.sample(5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    s.sample(3.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(ScalarStat, EmptyMinMaxAreZero)
{
    ScalarStat s;
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(10.0, 4); // [0,10) [10,20) [20,30) [30,+)
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(99.0); // clamps to last bucket
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, PercentileMonotone)
{
    Histogram h(1.0, 128);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_LE(h.percentile(0.50), h.percentile(0.90));
    EXPECT_LE(h.percentile(0.90), h.percentile(0.99));
}

TEST(Histogram, NonPositiveWidthClampsToOne)
{
    Histogram h(0.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 1.0);
    h.sample(2.5); // must not divide by zero
    EXPECT_EQ(h.buckets()[2], 1u);

    Histogram neg(-3.0, 4);
    EXPECT_DOUBLE_EQ(neg.bucketWidth(), 1.0);
    neg.sample(1.0);
    EXPECT_EQ(neg.buckets()[1], 1u);
}

TEST(Histogram, ZeroBucketCountClampsToOne)
{
    Histogram h(10.0, 0);
    EXPECT_EQ(h.buckets().size(), 1u);
    h.sample(123.0); // must not index into an empty vector
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.scalar().count(), 1u);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(StatGroup, RendersAllKinds)
{
    StatGroup g("grp");
    Counter c;
    c.inc(3);
    ScalarStat s;
    s.sample(1.5);
    Histogram h;
    h.sample(2.0);
    g.addCounter("hits", c);
    g.addScalar("lat", s);
    g.addHistogram("dist", h);
    const std::string out = g.render();
    EXPECT_NE(out.find("grp.hits 3"), std::string::npos);
    EXPECT_NE(out.find("grp.lat"), std::string::npos);
    EXPECT_NE(out.find("grp.dist"), std::string::npos);
}
