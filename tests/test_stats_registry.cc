#include <gtest/gtest.h>

#include <stdexcept>

#include "common/sim_object.hh"
#include "common/stats.hh"
#include "common/stats_json.hh"

using namespace qei;

namespace {

/** Leaf component with one of each stat kind. */
class Leaf : public SimObject
{
  public:
    explicit Leaf(std::string name) : SimObject(std::move(name)) {}

    void
    regStats(StatsRegistry& registry) override
    {
        const std::string base = fullPath() + ".";
        registry.addCounter(base + "hits", hits, "hit count");
        registry.addScalar(base + "latency", latency, "access latency");
        registry.addHistogram(base + "dist", dist, "latency histogram");
        registry.addFormula(
            base + "hit_rate",
            [this] {
                return latency.count()
                           ? static_cast<double>(hits.value()) /
                                 static_cast<double>(latency.count())
                           : 0.0;
            },
            "hits / accesses");
    }

    Counter hits;
    ScalarStat latency;
    Histogram dist{1.0, 8};
};

/** Composite that adopts two leaves. */
class Node : public SimObject
{
  public:
    explicit Node(std::string name)
        : SimObject(std::move(name)), a("a"), b("b")
    {
        adopt(a);
        adopt(b);
    }

    Leaf a;
    Leaf b;
};

} // namespace

TEST(SimObject, FullPathFollowsAdoption)
{
    Node root("root");
    EXPECT_EQ(root.fullPath(), "root");
    EXPECT_EQ(root.a.fullPath(), "root.a");
    EXPECT_EQ(root.b.fullPath(), "root.b");
    EXPECT_EQ(root.child("a"), &root.a);
    EXPECT_EQ(root.child("missing"), nullptr);
}

TEST(SimObject, AdoptReparentsSharedChild)
{
    Leaf shared("mem");
    Node first("sys0");
    first.adopt(shared);
    EXPECT_EQ(shared.fullPath(), "sys0.mem");

    Node second("sys1");
    second.adopt(shared);
    // The most recent adopter wins; the old parent no longer lists it.
    EXPECT_EQ(shared.fullPath(), "sys1.mem");
    EXPECT_EQ(first.child("mem"), nullptr);
    EXPECT_EQ(second.child("mem"), &shared);
}

TEST(SimObject, AdoptWithNewNameRenames)
{
    Leaf leaf("mmu");
    Node root("root");
    root.adopt(leaf, "mmu3");
    EXPECT_EQ(leaf.name(), "mmu3");
    EXPECT_EQ(leaf.fullPath(), "root.mmu3");
}

TEST(StatsRegistry, TreeWalkRegistersDottedPaths)
{
    Node root("root");
    StatsRegistry registry;
    root.regStatsTree(registry);

    EXPECT_TRUE(registry.contains("root.a.hits"));
    EXPECT_TRUE(registry.contains("root.a.latency"));
    EXPECT_TRUE(registry.contains("root.a.dist"));
    EXPECT_TRUE(registry.contains("root.a.hit_rate"));
    EXPECT_TRUE(registry.contains("root.b.hits"));
    EXPECT_EQ(registry.size(), 8u);

    root.a.hits.inc(3);
    root.a.latency.sample(2.0);
    EXPECT_DOUBLE_EQ(registry.value("root.a.hits"), 3.0);
    EXPECT_DOUBLE_EQ(registry.value("root.a.hit_rate"), 3.0);
    EXPECT_THROW(registry.value("root.nope"), std::out_of_range);
}

TEST(StatsRegistry, DuplicatePathThrows)
{
    StatsRegistry registry;
    Counter c;
    registry.addCounter("x.hits", c);
    EXPECT_THROW(registry.addCounter("x.hits", c),
                 std::invalid_argument);
    ScalarStat s;
    EXPECT_THROW(registry.addScalar("x.hits", s),
                 std::invalid_argument);
    EXPECT_THROW(registry.addCounter("", c), std::invalid_argument);
}

TEST(StatsRegistry, JsonRoundTrip)
{
    Node root("root");
    root.a.hits.inc(1234567890123ull);
    root.a.latency.sample(1.5);
    root.a.latency.sample(4.5);
    root.a.dist.sample(3.0);

    StatsRegistry registry;
    root.regStatsTree(registry);

    const Json doc = Json::parse(registry.dumpJson());
    ASSERT_TRUE(doc.isObject());

    // Counters are bare integers and survive the round trip exactly.
    ASSERT_TRUE(doc.contains("root.a.hits"));
    EXPECT_EQ(doc.at("root.a.hits").asUint(), 1234567890123ull);

    // Scalars are records.
    const Json& lat = doc.at("root.a.latency");
    EXPECT_EQ(lat.at("kind").asString(), "scalar");
    EXPECT_EQ(lat.at("count").asUint(), 2u);
    EXPECT_DOUBLE_EQ(lat.at("mean").asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(lat.at("min").asDouble(), 1.5);
    EXPECT_DOUBLE_EQ(lat.at("max").asDouble(), 4.5);

    // Histograms carry their buckets.
    const Json& dist = doc.at("root.a.dist");
    EXPECT_EQ(dist.at("kind").asString(), "histogram");
    EXPECT_EQ(dist.at("buckets").size(), 8u);
    EXPECT_EQ(dist.at("buckets").at(3).asUint(), 1u);

    // Formulas are bare numbers.
    EXPECT_TRUE(doc.at("root.a.hit_rate").isNumber());
}

TEST(StatsRegistry, CsvHasHeaderAndRows)
{
    Node root("root");
    root.a.hits.inc(7);
    StatsRegistry registry;
    root.regStatsTree(registry);
    const std::string csv = registry.dumpCsv();
    EXPECT_EQ(csv.rfind("path,field,value\n", 0), 0u);
    EXPECT_NE(csv.find("root.a.hits,value,7\n"), std::string::npos);
}

TEST(StatsRegistry, ResetAllZeroesBetweenRois)
{
    Node root("root");
    StatsRegistry registry;
    root.regStatsTree(registry);

    // ROI 1.
    root.a.hits.inc(10);
    root.a.latency.sample(2.0);
    root.a.dist.sample(2.0);
    const StatsSnapshot before = statsSnapshot(registry);
    EXPECT_DOUBLE_EQ(before.at("root.a.hits"), 10.0);

    registry.resetAll();
    EXPECT_EQ(root.a.hits.value(), 0u);
    EXPECT_EQ(root.a.latency.count(), 0u);
    EXPECT_EQ(root.a.dist.scalar().count(), 0u);

    // ROI 2 accumulates fresh.
    root.a.hits.inc(3);
    EXPECT_DOUBLE_EQ(registry.value("root.a.hits"), 3.0);
}

TEST(StatsRegistry, DiffAgainstSnapshot)
{
    Node root("root");
    StatsRegistry registry;
    root.regStatsTree(registry);

    root.a.hits.inc(5);
    const StatsSnapshot before = statsSnapshot(registry);
    root.a.hits.inc(7);

    const Json diff = statsDiffJson(registry, before);
    EXPECT_DOUBLE_EQ(diff.at("root.a.hits").asDouble(), 7.0);
}

TEST(StatsRegistry, RenderSkipsZeros)
{
    Node root("root");
    root.a.hits.inc(2);
    StatsRegistry registry;
    root.regStatsTree(registry);

    const std::string all = registry.render(/*skip_zero=*/false);
    EXPECT_NE(all.find("root.b.hits"), std::string::npos);

    const std::string trimmed = registry.render(/*skip_zero=*/true);
    EXPECT_NE(trimmed.find("root.a.hits"), std::string::npos);
    EXPECT_EQ(trimmed.find("root.b.hits"), std::string::npos);
}
