#include <gtest/gtest.h>

#include "qei/struct_header.hh"

using namespace qei;

namespace {

struct HeaderFixture : ::testing::Test
{
    HeaderFixture() : mem(1 << 24), vm(mem)
    {
        addr = vm.allocLines(kCacheLineBytes);
    }

    SimMemory mem;
    VirtualMemory vm;
    Addr addr = 0;
};

} // namespace

TEST_F(HeaderFixture, RoundtripAllFields)
{
    StructHeader h;
    h.root = 0x123456789AB0ULL;
    h.type = StructType::SkipList;
    h.subtype = 12;
    h.keyLen = 100;
    h.flags = kFlagInlineKey | kFlagRemoteCompareOk;
    h.size = 10000;
    h.aux0 = 0xAAAA;
    h.aux1 = 0xBBBB;
    h.aux2 = 0xCCCC;
    h.hashFn = HashFunction::Jenkins;
    h.writeTo(vm, addr);

    const StructHeader out = StructHeader::readFrom(vm, addr);
    EXPECT_EQ(out.root, h.root);
    EXPECT_EQ(out.type, h.type);
    EXPECT_EQ(out.subtype, h.subtype);
    EXPECT_EQ(out.keyLen, h.keyLen);
    EXPECT_EQ(out.flags, h.flags);
    EXPECT_EQ(out.size, h.size);
    EXPECT_EQ(out.aux0, h.aux0);
    EXPECT_EQ(out.aux1, h.aux1);
    EXPECT_EQ(out.aux2, h.aux2);
    EXPECT_EQ(out.hashFn, h.hashFn);
}

TEST_F(HeaderFixture, FlagHelpers)
{
    StructHeader h;
    EXPECT_FALSE(h.inlineKey());
    EXPECT_FALSE(h.remoteCompareOk());
    h.flags = kFlagInlineKey;
    EXPECT_TRUE(h.inlineKey());
    h.flags |= kFlagRemoteCompareOk;
    EXPECT_TRUE(h.remoteCompareOk());
}

TEST_F(HeaderFixture, FitsInOneCacheline)
{
    // The serialised image must never write past 64 bytes: poison the
    // next line and check it survives.
    const Addr next = addr + kCacheLineBytes;
    vm.write<std::uint64_t>(next, 0x5A5A5A5A5A5A5A5AULL);
    StructHeader h;
    h.root = ~0ULL;
    h.size = ~0ULL;
    h.writeTo(vm, addr);
    EXPECT_EQ(vm.read<std::uint64_t>(next), 0x5A5A5A5A5A5A5A5AULL);
}

TEST_F(HeaderFixture, DefaultTypeInvalid)
{
    StructHeader h;
    h.writeTo(vm, addr);
    EXPECT_EQ(StructHeader::readFrom(vm, addr).type,
              StructType::Invalid);
}

TEST_F(HeaderFixture, MisalignedWriteDies)
{
    StructHeader h;
    EXPECT_DEATH(h.writeTo(vm, addr + 8), "aligned");
}
