// QeiSystem-level tests: dispatch policy per scheme, core-side issue
// constraints of QUERY_B / QUERY_NB, TLB warming, and timing-shape
// invariants across schemes.

#include <gtest/gtest.h>

#include "ds/chained_hash.hh"
#include "ds/linked_list.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

struct SystemFixture : ::testing::Test
{
    SystemFixture() : world(7), rng(3)
    {
        items.clear();
        for (int i = 0; i < 200; ++i)
            items.emplace_back(randomKey(rng, 16), 4000 + i);
        table = std::make_unique<SimChainedHash>(world.vm, items, 128);
        for (int i = 0; i < 50; ++i) {
            const Key& key = items[rng.below(items.size())].first;
            QueryTrace trace = table->query(key);
            QueryJob job;
            job.headerAddr = table->headerAddr();
            job.keyAddr = table->stageKey(key);
            job.resultAddr = world.vm.alloc(16, 16);
            job.expectFound = trace.found;
            job.expectValue = trace.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(trace));
        }
        prep.profile.nonQueryInstrPerOp = 20;
    }

    World world;
    Rng rng;
    std::vector<std::pair<Key, std::uint64_t>> items;
    std::unique_ptr<SimChainedHash> table;
    Prepared prep;
};

} // namespace

TEST_F(SystemFixture, PerCoreDispatchUsesIssuingCoresAccelerator)
{
    world.resetTiming();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware,
                     SchemeConfig::coreIntegrated());
    Accelerator& a0 = system.acceleratorFor(prep.jobs[0].keyAddr, 0);
    Accelerator& a5 = system.acceleratorFor(prep.jobs[0].keyAddr, 5);
    EXPECT_EQ(a0.id(), 0);
    EXPECT_EQ(a5.id(), 5);
}

TEST_F(SystemFixture, ChaDispatchDistributesByKeyLine)
{
    world.resetTiming();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware, SchemeConfig::chaTlb());
    std::set<int> targets;
    for (const auto& job : prep.jobs)
        targets.insert(system.acceleratorFor(job.keyAddr, 0).id());
    EXPECT_GT(targets.size(), 5u) << "distribution should spread";
}

TEST_F(SystemFixture, DeviceDispatchAlwaysSingleInstance)
{
    world.resetTiming();
    QeiSystem system(world.chip, world.events, world.hierarchy,
                     world.vm, world.firmware,
                     SchemeConfig::deviceDirect());
    EXPECT_EQ(system.acceleratorCount(), 1);
    for (const auto& job : prep.jobs)
        EXPECT_EQ(system.acceleratorFor(job.keyAddr, 3).id(), 0);
}

TEST_F(SystemFixture, BlockingInFlightBoundedByRobWindow)
{
    Prepared dense = prep;
    dense.profile.nonQueryInstrPerOp = 50; // window 51 -> 224/51 = 4
    const QeiRunStats stats =
        runQei(world, dense, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_LE(stats.maxInFlightObserved, 4.0);
    EXPECT_EQ(stats.mismatches, 0u);
}

TEST_F(SystemFixture, DenserQueriesAllowMoreInFlight)
{
    Prepared dense = prep;
    dense.profile.nonQueryInstrPerOp = 4;
    const QeiRunStats denseStats =
        runQei(world, dense, DriverConfig(SchemeConfig::coreIntegrated()));
    Prepared sparse = prep;
    sparse.profile.nonQueryInstrPerOp = 100;
    const QeiRunStats sparseStats =
        runQei(world, sparse, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_GT(denseStats.maxInFlightObserved,
              sparseStats.maxInFlightObserved);
}

TEST_F(SystemFixture, NonBlockingExceedsBlockingParallelism)
{
    Prepared wide = prep;
    wide.profile.nonQueryInstrPerOp = 100; // blocking would cap at 2
    const QeiRunStats blocking =
        runQei(world, wide, DriverConfig(SchemeConfig::chaTlb()).withMode(QueryMode::Blocking));
    const QeiRunStats nonBlocking =
        runQei(world, wide, DriverConfig(SchemeConfig::chaTlb()).withMode(QueryMode::NonBlocking));
    EXPECT_GT(nonBlocking.maxInFlightObserved,
              blocking.maxInFlightObserved);
}

TEST_F(SystemFixture, AllQueriesCompleteOnEveryScheme)
{
    for (const auto& scheme : SchemeConfig::allSchemes()) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(scheme));
        EXPECT_EQ(stats.queries, prep.jobs.size()) << scheme.name();
        EXPECT_EQ(stats.mismatches, 0u) << scheme.name();
        EXPECT_GT(stats.cycles, 0u) << scheme.name();
    }
}

TEST_F(SystemFixture, DeviceIndirectSlowerThanDirect)
{
    const QeiRunStats direct =
        runQei(world, prep, DriverConfig(SchemeConfig::deviceDirect()));
    const QeiRunStats indirect =
        runQei(world, prep, DriverConfig(SchemeConfig::deviceIndirect(300)));
    EXPECT_GT(indirect.cycles, direct.cycles);
}

TEST_F(SystemFixture, InterfaceLatencySweepIsMonotonic)
{
    Cycles prev = 0;
    for (Cycles lat : {50u, 300u, 1000u}) {
        const QeiRunStats stats = runQei(world, prep, DriverConfig(SchemeConfig::deviceIndirect(lat)));
        EXPECT_GT(stats.cycles, prev);
        prev = stats.cycles;
    }
}

TEST_F(SystemFixture, ChaNoTlbSlowerThanChaTlb)
{
    const QeiRunStats with =
        runQei(world, prep, DriverConfig(SchemeConfig::chaTlb()));
    const QeiRunStats without =
        runQei(world, prep, DriverConfig(SchemeConfig::chaNoTlb()));
    // The per-access MMU round trip must cost something.
    EXPECT_GE(without.cycles, with.cycles);
}

TEST_F(SystemFixture, WarmTlbsReduceCycles)
{
    // Cold run: skip the usual warmTlbs by driving QeiSystem directly.
    world.resetTiming();
    world.warmLlc();
    QeiSystem cold(world.chip, world.events, world.hierarchy, world.vm,
                   world.firmware, SchemeConfig::chaTlb());
    const QeiRunStats coldStats =
        cold.runBlocking(prep.jobs, 0, prep.profile);

    const QeiRunStats warmStats =
        runQei(world, prep, DriverConfig(SchemeConfig::chaTlb()));
    EXPECT_LT(warmStats.cycles, coldStats.cycles);
}

TEST_F(SystemFixture, CoreInstructionsFarBelowBaseline)
{
    const CoreRunResult baseline = runBaseline(world, prep);
    const QeiRunStats qei =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_LT(qei.coreInstructions, baseline.instructions / 2);
}

TEST_F(SystemFixture, SpeedupOverBaselineOnWarmLlc)
{
    const CoreRunResult baseline = runBaseline(world, prep);
    const QeiRunStats qei =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_GT(speedupOf(baseline, qei), 1.0);
}
