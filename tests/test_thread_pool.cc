/**
 * Unit tests for qei::ThreadPool and parallelMap: result ordering,
 * exception propagation through futures, the serial threads<=1 path,
 * and a 10k-task stress run.
 */

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

using namespace qei;

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitVoidTaskRuns)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        auto future = pool.submit([&] { ++ran; });
        future.get();
    }
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, FuturesPreserveSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 256; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    auto good = pool.submit([] { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not poison the pool.
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&] { ++done; });
        // Futures discarded on purpose: destruction must still run
        // everything that was queued.
    }
    EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, StressTenThousandTasks)
{
    constexpr int kTasks = 10000;
    std::atomic<std::uint64_t> sum{0};
    ThreadPool pool(8);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit(
            [&sum, i] { sum += static_cast<std::uint64_t>(i); }));
    }
    for (auto& f : futures)
        f.get();
    const std::uint64_t expect =
        static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2;
    EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
    // threads <= 0 means "auto": the pool must still come up.
    ThreadPool pool(0);
    EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ParallelMap, ResultsInIndexOrder)
{
    auto results = parallelMap(8, 500, [](std::size_t i) {
        return static_cast<int>(i) * 3;
    });
    ASSERT_EQ(results.size(), 500u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], static_cast<int>(i) * 3);
}

TEST(ParallelMap, SerialAndParallelAgree)
{
    auto body = [](std::size_t i) {
        // A little deterministic work per item.
        std::uint64_t h = i + 1;
        for (int r = 0; r < 16; ++r)
            h = h * 6364136223846793005ull + 1442695040888963407ull;
        return h;
    };
    const auto serial = parallelMap(1, 64, body);
    const auto parallel = parallelMap(8, 64, body);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelMap, EmptyAndSingle)
{
    const auto none =
        parallelMap(4, 0, [](std::size_t) { return 1; });
    EXPECT_TRUE(none.empty());
    const auto one = parallelMap(
        4, 1, [](std::size_t i) { return static_cast<int>(i) + 9; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 9);
}

TEST(ParallelMap, ExceptionSurfacesToCaller)
{
    EXPECT_THROW(parallelMap(4, 8,
                             [](std::size_t i) -> int {
                                 if (i == 5)
                                     throw std::runtime_error("item 5");
                                 return 0;
                             }),
                 std::runtime_error);
}

TEST(ParallelMap, MoveOnlyResults)
{
    auto results = parallelMap(4, 16, [](std::size_t i) {
        auto p = std::make_unique<int>(static_cast<int>(i));
        return p;
    });
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(*results[i], static_cast<int>(i));
}
