#include <gtest/gtest.h>

#include "vm/tlb.hh"

using namespace qei;

TEST(Tlb, MissThenHit)
{
    Tlb tlb(4, 2);
    EXPECT_FALSE(tlb.lookup(0x10));
    tlb.fill(0x10);
    EXPECT_TRUE(tlb.lookup(0x10));
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2, 1);
    tlb.fill(1);
    tlb.fill(2);
    EXPECT_TRUE(tlb.lookup(1)); // 1 becomes MRU
    tlb.fill(3);                // evicts 2
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
    EXPECT_TRUE(tlb.lookup(3));
}

TEST(Tlb, DuplicateFillIsIdempotent)
{
    Tlb tlb(2, 1);
    tlb.fill(1);
    tlb.fill(1);
    tlb.fill(2);
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_TRUE(tlb.lookup(2));
    EXPECT_EQ(tlb.size(), 2u);
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb(8, 1);
    for (Addr v = 0; v < 8; ++v)
        tlb.fill(v);
    tlb.flush();
    EXPECT_EQ(tlb.size(), 0u);
    EXPECT_FALSE(tlb.lookup(3));
}

TEST(Tlb, PrefillStopsAtCapacity)
{
    Tlb tlb(4, 1);
    tlb.prefill({1, 2, 3, 4, 5, 6});
    EXPECT_EQ(tlb.size(), 4u);
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(6));
}

TEST(Tlb, HitRate)
{
    Tlb tlb(4, 1);
    tlb.fill(1);
    tlb.lookup(1);
    tlb.lookup(2);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
}

namespace {

struct MmuFixture : ::testing::Test
{
    MmuFixture() : mem(1 << 26), vm(mem), mmu(vm)
    {
        base = vm.alloc(kPageBytes * 8, kPageBytes);
    }

    SimMemory mem;
    VirtualMemory vm;
    Mmu mmu;
    Addr base = 0;
};

} // namespace

TEST_F(MmuFixture, ColdTranslationWalks)
{
    const Translation t = mmu.translate(base);
    EXPECT_TRUE(t.valid);
    EXPECT_TRUE(t.walked);
    EXPECT_EQ(t.latency, 1u + 9u + 90u);
    EXPECT_EQ(t.paddr, vm.translate(base));
}

TEST_F(MmuFixture, SecondTranslationHitsL1)
{
    mmu.translate(base);
    const Translation t = mmu.translate(base + 8);
    EXPECT_TRUE(t.l1Hit);
    EXPECT_EQ(t.latency, 1u);
}

TEST_F(MmuFixture, L2HitAfterL1Eviction)
{
    mmu.translate(base);
    // Push the page out of the 64-entry L1 TLB with 80 other pages.
    const Addr filler = vm.alloc(kPageBytes * 90, kPageBytes);
    for (int p = 0; p < 80; ++p)
        mmu.translate(filler + p * kPageBytes);
    const Translation t = mmu.translate(base);
    EXPECT_TRUE(t.l2Hit);
    EXPECT_EQ(t.latency, 1u + 9u);
}

TEST_F(MmuFixture, FaultOnUnmapped)
{
    const Translation t = mmu.translate(0x40);
    EXPECT_FALSE(t.valid);
}

TEST_F(MmuFixture, TranslateViaL2SkipsL1)
{
    const Translation cold = mmu.translateViaL2(base);
    EXPECT_TRUE(cold.walked);
    EXPECT_EQ(cold.latency, 9u + 90u);
    const Translation warm = mmu.translateViaL2(base);
    EXPECT_TRUE(warm.l2Hit);
    EXPECT_EQ(warm.latency, 9u);
    // And the L1 was never filled.
    const Translation l1 = mmu.translate(base);
    EXPECT_FALSE(l1.l1Hit);
}

TEST_F(MmuFixture, PrefillL2MakesWarmTranslations)
{
    mmu.prefillL2({pageNumber(base)});
    const Translation t = mmu.translateViaL2(base);
    EXPECT_TRUE(t.l2Hit);
}

TEST_F(MmuFixture, FlushForgetsEverything)
{
    mmu.translate(base);
    mmu.flush();
    const Translation t = mmu.translate(base);
    EXPECT_TRUE(t.walked);
}
