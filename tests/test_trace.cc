/**
 * The qei::trace subsystem: ring-buffer overflow semantics, Perfetto
 * JSON well-formedness (via a qei::Json round trip), span nesting of
 * the per-query breakdown tiles, and the foldTrace() cross-check that
 * the timeline reproduces the live LatencyBreakdown totals exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>

#include "bench_util.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

/** A sink with one component/name pair ready to record. */
struct TestSink
{
    trace::TraceSink sink;
    std::uint16_t comp = 0;
    std::uint32_t name = 0;

    explicit TestSink(std::size_t capacity)
    {
        sink.enable(capacity);
        comp = sink.internComponent("test.component");
        name = sink.internName("event");
    }
};

} // namespace

TEST(Trace, ActiveGuard)
{
    trace::TraceSink sink;
    EXPECT_FALSE(trace::active(nullptr));
    EXPECT_FALSE(trace::active(&sink)); // disabled by default
    sink.enable(16);
    // Enabled, active() follows the compile-time gate.
    EXPECT_EQ(trace::active(&sink), trace::kCompiledIn);
    sink.disable();
    EXPECT_FALSE(trace::active(&sink));
}

TEST(Trace, InterningIsStableAndDeduplicated)
{
    trace::TraceSink sink; // interning works on a disabled sink
    const auto a = sink.internComponent("system.accel0");
    const auto b = sink.internComponent("system.accel1");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, sink.internComponent("system.accel0"));
    const auto n = sink.internName("query");
    EXPECT_EQ(n, sink.internName("query"));
    EXPECT_NE(n, sink.internName("deliver"));
}

TEST(Trace, RingWrapKeepsNewestEvents)
{
    TestSink t(8);
    for (Cycles tick = 0; tick < 20; ++tick) {
        t.sink.record(trace::Category::Sim, t.comp, t.name,
                      trace::kNoQuery, tick, 1);
    }
    EXPECT_EQ(t.sink.emitted(), 20u);
    EXPECT_EQ(t.sink.size(), 8u);
    EXPECT_EQ(t.sink.dropped(), 12u);

    // ordered() returns oldest-first: ticks 12..19 survive.
    const auto events = t.sink.ordered();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].tick, 12 + static_cast<Cycles>(i));

    // drain() hands the same view over and resets the ring.
    const trace::TraceBuffer buf = t.sink.drain();
    EXPECT_EQ(buf.events.size(), 8u);
    EXPECT_EQ(buf.emitted, 20u);
    EXPECT_EQ(buf.dropped, 12u);
    EXPECT_EQ(buf.events.front().tick, 12u);
    EXPECT_EQ(t.sink.size(), 0u);
    EXPECT_EQ(t.sink.emitted(), 0u);
}

TEST(Trace, ReenableKeepsCapacityAndDoesNotReallocate)
{
    TestSink t(8);
    t.sink.record(trace::Category::Sim, t.comp, t.name,
                  trace::kNoQuery, 1, 1);
    t.sink.disable();
    t.sink.enable(8); // same capacity: contents survive
    EXPECT_EQ(t.sink.size(), 1u);
    t.sink.enable(16); // resize drops the old ring
    EXPECT_EQ(t.sink.size(), 0u);
}

TEST(Trace, PerfettoJsonRoundTrips)
{
    TestSink t(64);
    // One complete span, one instant (duration 0), one with a query.
    t.sink.record(trace::Category::Mem, t.comp, t.name,
                  trace::kNoQuery, 10, 5);
    t.sink.record(trace::Category::Qst, t.comp, t.name,
                  trace::kNoQuery, 20, 0);
    t.sink.record(trace::Category::Query, t.comp, t.name, 42, 30, 7);

    const trace::TraceBuffer buf = t.sink.drain();
    const std::string text =
        trace::perfettoJson(buf, "unit/test").dump(2);

    // Well-formed: qei::Json parses its own dump back.
    const Json doc = Json::parse(text);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const Json& events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // Metadata (process_name + one thread_name) plus three events.
    ASSERT_EQ(events.size(), 5u);

    EXPECT_EQ(events.at(0).at("ph").asString(), "M");
    EXPECT_EQ(events.at(0).at("name").asString(), "process_name");
    EXPECT_EQ(events.at(0).at("args").at("name").asString(),
              "unit/test");
    EXPECT_EQ(events.at(1).at("ph").asString(), "M");

    const Json& span = events.at(2);
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("cat").asString(), "mem");
    EXPECT_EQ(span.at("ts").asUint(), 10u);
    EXPECT_EQ(span.at("dur").asUint(), 5u);
    EXPECT_FALSE(span.contains("args"));

    const Json& instant = events.at(3);
    EXPECT_EQ(instant.at("ph").asString(), "i");
    EXPECT_EQ(instant.at("s").asString(), "t");
    EXPECT_FALSE(instant.contains("dur"));

    const Json& query = events.at(4);
    EXPECT_EQ(query.at("cat").asString(), "query");
    EXPECT_EQ(query.at("args").at("query").asUint(), 42u);
}

TEST(Trace, PerfettoCounterTrackRoundTrips)
{
    // Category::Metric events carry a double value and export as
    // Perfetto counter tracks ("ph":"C") — the metrics sampler's
    // QST-occupancy / event-queue-depth series.
    TestSink t(16);
    const auto comp = t.sink.internComponent("system.metrics");
    const auto occupancy = t.sink.internName("qst_occupancy");
    const auto depth = t.sink.internName("event_queue_depth");
    t.sink.recordCounter(comp, occupancy, 100, 3.0);
    t.sink.recordCounter(comp, depth, 100, 17.0);
    t.sink.recordCounter(comp, occupancy, 200, 4.5);

    const trace::TraceBuffer buf = t.sink.drain();
    ASSERT_EQ(buf.events.size(), 3u);
    EXPECT_EQ(buf.events[0].category, trace::Category::Metric);
    EXPECT_DOUBLE_EQ(buf.events[2].value, 4.5);

    const Json doc = Json::parse(
        trace::perfettoJson(buf, "unit/counters").dump(2));
    const Json& events = doc.at("traceEvents");
    // process_name plus one thread_name per interned component (the
    // TestSink pre-interns one), then the three counter samples.
    ASSERT_EQ(events.size(), 6u);
    for (std::size_t i = 3; i < 6; ++i) {
        const Json& ev = events.at(i);
        EXPECT_EQ(ev.at("ph").asString(), "C") << i;
        EXPECT_EQ(ev.at("cat").asString(), "metric") << i;
        EXPECT_FALSE(ev.contains("dur")) << i;
        EXPECT_TRUE(ev.at("args").contains("value")) << i;
    }
    EXPECT_EQ(events.at(3).at("name").asString(), "qst_occupancy");
    EXPECT_EQ(events.at(3).at("ts").asUint(), 100u);
    EXPECT_DOUBLE_EQ(events.at(3).at("args").at("value").asDouble(),
                     3.0);
    EXPECT_DOUBLE_EQ(events.at(5).at("args").at("value").asDouble(),
                     4.5);
}

#if QEI_TRACING

namespace {

/** Run one small accelerated workload with the sink armed. */
trace::TraceBuffer
tracedRun(QeiRunStats& stats_out)
{
    World world(7);
    const auto workload = makeWorkloadFactories()[0]();
    workload->build(world);
    const Prepared prepared = workload->prepare(world, 150);
    world.traceSink.enable(std::size_t{1} << 20); // no drops
    stats_out =
        runQei(world, prepared, DriverConfig(SchemeConfig::coreIntegrated()));
    trace::TraceBuffer buf = world.traceSink.drain();
    EXPECT_EQ(buf.dropped, 0u);
    return buf;
}

} // namespace

TEST(Trace, FoldedBreakdownMatchesLiveTotals)
{
    QeiRunStats stats;
    const trace::TraceBuffer buf = tracedRun(stats);
    ASSERT_GT(buf.events.size(), 0u);

    const trace::FoldedBreakdown fold = trace::foldTrace(buf);
    EXPECT_EQ(fold.queries, stats.breakdownQueries);
    EXPECT_EQ(fold.endToEnd, stats.breakdownEndToEnd);

    Cycles componentSum = 0;
    for (std::size_t i = 0; i < trace::kLatencyComponentCount; ++i) {
        const auto c = static_cast<trace::LatencyComponent>(i);
        ASSERT_TRUE(stats.breakdownCycles.count(trace::toString(c)));
        EXPECT_EQ(fold.totals[i],
                  stats.breakdownCycles.at(trace::toString(c)))
            << trace::toString(c);
        componentSum += fold.totals[i];
    }
    // Every cycle of every query is charged to exactly one component:
    // the tiles sum to the end-to-end total, no gaps, no overlaps.
    EXPECT_EQ(componentSum, stats.breakdownEndToEnd);
    EXPECT_GT(stats.breakdownQueries, 0u);
    EXPECT_GT(stats.breakdownEndToEnd, 0u);
}

TEST(Trace, BreakdownSpansTileTheQuerySpan)
{
    QeiRunStats stats;
    const trace::TraceBuffer buf = tracedRun(stats);

    struct Span
    {
        Cycles tick;
        Cycles duration;
    };
    std::map<std::uint64_t, Span> queries;
    std::map<std::uint64_t, std::vector<Span>> tiles;
    for (const trace::TraceEvent& ev : buf.events) {
        if (ev.category == trace::Category::Query)
            queries[ev.queryId] = {ev.tick, ev.duration};
        else if (ev.category == trace::Category::Breakdown)
            tiles[ev.queryId].push_back({ev.tick, ev.duration});
    }
    ASSERT_EQ(queries.size(), stats.breakdownQueries);

    for (const auto& [qid, span] : queries) {
        ASSERT_TRUE(tiles.count(qid)) << "query " << qid;
        auto& parts = tiles.at(qid);
        std::sort(parts.begin(), parts.end(),
                  [](const Span& a, const Span& b) {
                      return a.tick < b.tick;
                  });
        // Contiguous tiling: starts with the query, each tile begins
        // where the previous ended, ends at the query's end.
        Cycles cursor = span.tick;
        for (const Span& part : parts) {
            EXPECT_EQ(part.tick, cursor) << "query " << qid;
            cursor += part.duration;
        }
        EXPECT_EQ(cursor, span.tick + span.duration)
            << "query " << qid;
    }
}

TEST(Trace, MatrixTraceFilesAreWellFormed)
{
    // End to end through the matrix writer: one merged file plus one
    // per cell, all parseable.
    const std::string path = "test_trace_matrix.json";
    bench::MatrixOptions matrix;
    matrix.queries = 60;
    matrix.topologies = {SchemeConfig::coreIntegrated()};
    matrix.tracePath = path;
    auto factories = makeWorkloadFactories();
    factories.resize(1);
    const auto runs = bench::runWorkloadMatrix(factories, matrix);
    ASSERT_EQ(runs.size(), 1u);
    ASSERT_EQ(runs[0].traces.size(), 2u); // baseline + 1 scheme

    for (const std::string file :
         {path, "test_trace_matrix." + runs[0].name + ".baseline.json",
          "test_trace_matrix." + runs[0].name + "." +
              SchemeConfig::coreIntegrated().name() + ".json"}) {
        std::ifstream in(file);
        ASSERT_TRUE(in.good()) << file;
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        const Json doc = Json::parse(text);
        ASSERT_TRUE(doc.at("traceEvents").isArray()) << file;
        EXPECT_GT(doc.at("traceEvents").size(), 0u) << file;
        std::remove(file.c_str());
    }
}

#endif // QEI_TRACING
