// Traffic/Topology layer tests: seeded arrival processes are pure
// functions of their constructor arguments (so matrix cells replay
// them identically at any --threads), the closed-loop source
// reproduces the legacy run loops exactly, and a Topology built from
// a SchemeConfig is observationally identical to the SchemeConfig-era
// path on every paper scheme.

#include <gtest/gtest.h>

#include <memory>

#include "traffic/traffic.hh"
#include "workloads/dpdk_fib.hh"
#include "workloads/workload.hh"

using namespace qei;
using traffic::Arrival;
using traffic::Bursty;
using traffic::ClosedLoop;
using traffic::PoissonOpenLoop;

namespace {

std::vector<Cycles>
ticksOf(const std::vector<Arrival>& arrivals)
{
    std::vector<Cycles> ticks;
    ticks.reserve(arrivals.size());
    for (const Arrival& a : arrivals)
        ticks.push_back(a.tick);
    return ticks;
}

/** One small dpdk world per call — cheap enough for a test body. */
struct Fixture
{
    DpdkFibWorkload workload{std::size_t{2048}, std::size_t{512}};
    World world{17};
    Prepared prep;

    explicit Fixture(std::size_t queries = 200)
    {
        workload.build(world);
        prep = workload.prepare(world, queries);
    }
};

} // namespace

TEST(Traffic, ClosedLoopArrivesAtTickZero)
{
    ClosedLoop src;
    EXPECT_TRUE(src.closedLoop());
    const auto arrivals = src.schedule(16);
    ASSERT_EQ(arrivals.size(), 16u);
    for (const Arrival& a : arrivals) {
        EXPECT_EQ(a.tick, 0u);
        EXPECT_EQ(a.tenant, 0);
    }
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i].queryIndex, i);
}

TEST(Traffic, PoissonIsDeterministicPerSeed)
{
    PoissonOpenLoop a(500.0, /*seed=*/7);
    PoissonOpenLoop b(500.0, /*seed=*/7);
    PoissonOpenLoop c(500.0, /*seed=*/8);
    EXPECT_FALSE(a.closedLoop());
    const auto ta = ticksOf(a.schedule(512));
    EXPECT_EQ(ta, ticksOf(b.schedule(512)));
    EXPECT_NE(ta, ticksOf(c.schedule(512)));
    // schedule() is a pure function: asking the same source again
    // replays the same stream (no hidden RNG state carries over).
    EXPECT_EQ(ta, ticksOf(a.schedule(512)));
}

TEST(Traffic, PoissonTicksAreMonotoneWithTheRequestedMeanGap)
{
    PoissonOpenLoop src(300.0, /*seed=*/11);
    const auto arrivals = src.schedule(4000);
    ASSERT_EQ(arrivals.size(), 4000u);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i].tick, arrivals[i - 1].tick);
    const double meanGap =
        static_cast<double>(arrivals.back().tick) /
        static_cast<double>(arrivals.size() - 1);
    EXPECT_NEAR(meanGap, 300.0, 30.0); // lln: within 10% at n=4000
}

TEST(Traffic, BurstyIsDeterministicAndClustersArrivals)
{
    Bursty a(400.0, /*mean_burst=*/8.0, /*intra_gap=*/1.0, /*seed=*/3);
    Bursty b(400.0, 8.0, 1.0, /*seed=*/3);
    const auto ta = ticksOf(a.schedule(2000));
    EXPECT_EQ(ta, ticksOf(b.schedule(2000)));
    // Same offered load as the Poisson source, burstier spacing: more
    // back-to-back gaps (<= the intra-burst gap) than Poisson has.
    PoissonOpenLoop smooth(400.0, /*seed=*/3);
    const auto tp = ticksOf(smooth.schedule(2000));
    auto tinyGaps = [](const std::vector<Cycles>& t) {
        std::size_t n = 0;
        for (std::size_t i = 1; i < t.size(); ++i)
            if (t[i] - t[i - 1] <= 1)
                ++n;
        return n;
    };
    EXPECT_GT(tinyGaps(ta), 2 * tinyGaps(tp));
}

TEST(Traffic, TenantsRoundRobin)
{
    PoissonOpenLoop src(100.0, /*seed=*/5, /*tenants=*/3);
    const auto arrivals = src.schedule(9);
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i].tenant, static_cast<int>(i % 3));
}

TEST(Traffic, ClosedLoopSourceMatchesLegacyLoopExactly)
{
    // The acceptance bar for the whole refactor: a Driver fed the
    // ClosedLoop source must reproduce the pre-traffic-layer result
    // bit for bit, on every paper scheme.
    for (const SchemeConfig& scheme : SchemeConfig::allSchemes()) {
        Fixture legacy;
        const QeiRunStats before =
            runQei(legacy.world, legacy.prep, DriverConfig(scheme));

        Fixture routed;
        const QeiRunStats after = runQei(
            routed.world, routed.prep,
            DriverConfig(scheme).withTraffic(
                std::make_shared<ClosedLoop>()));

        EXPECT_EQ(before.cycles, after.cycles) << scheme.name();
        EXPECT_EQ(before.resultChecksum, after.resultChecksum)
            << scheme.name();
        EXPECT_EQ(before.coreInstructions, after.coreInstructions)
            << scheme.name();
        EXPECT_EQ(before.mismatches, after.mismatches);
        EXPECT_EQ(before.breakdownEndToEnd, after.breakdownEndToEnd)
            << scheme.name();
        // Closed loop: no arrival queue, so sojourn == service.
        EXPECT_EQ(after.queueWait.max, 0.0) << scheme.name();
        EXPECT_EQ(after.sojourn.count, after.queries);
    }
}

TEST(Traffic, TopologyRoundTripsSchemeConfig)
{
    for (const SchemeConfig& scheme : SchemeConfig::allSchemes()) {
        const Topology topo(scheme);
        EXPECT_EQ(topo.name(), scheme.name());
        EXPECT_EQ(topo.acceleratorCount(),
                  static_cast<std::size_t>(scheme.accelerators));

        Fixture viaScheme;
        const QeiRunStats a =
            runQei(viaScheme.world, viaScheme.prep,
                   DriverConfig(scheme));
        Fixture viaTopo;
        const QeiRunStats b =
            runQei(viaTopo.world, viaTopo.prep, DriverConfig(topo));
        EXPECT_EQ(a.cycles, b.cycles) << scheme.name();
        EXPECT_EQ(a.resultChecksum, b.resultChecksum) << scheme.name();
        EXPECT_EQ(a.memAccesses, b.memAccesses) << scheme.name();
    }
}

TEST(Traffic, TopologyPlacementsMirrorHistoricalLayout)
{
    const Topology cha(SchemeConfig::chaTlb());
    ASSERT_EQ(cha.placements().size(), cha.acceleratorCount());
    for (std::size_t i = 0; i < cha.placements().size(); ++i) {
        EXPECT_EQ(cha.placements()[i].name,
                  "accel" + std::to_string(i));
        EXPECT_EQ(cha.placements()[i].tile, static_cast<int>(i));
    }
    const Topology dev(SchemeConfig::deviceDirect());
    ASSERT_EQ(dev.placements().size(), 1u);
    EXPECT_EQ(dev.placements()[0].tile, dev.params().deviceTile);
}

TEST(Traffic, CustomRouteOverridesPlacementPolicy)
{
    Fixture f{60};
    Topology topo = Topology(SchemeConfig::chaTlb())
                        .named("cha-tlb-pinned")
                        .withRoute([](Addr, int, const auto&) {
                            return 0; // pin everything to accel0
                        });
    const QeiRunStats stats =
        runQei(f.world, f.prep, DriverConfig(topo));
    EXPECT_EQ(stats.mismatches, 0u);
    EXPECT_EQ(stats.queries, f.prep.jobs.size());
}

TEST(Traffic, OpenLoopRunIsDeterministicAndMeasuresSojourn)
{
    // Generous mean gap -> the queue never backs up, queue-wait stays
    // small, and every query still completes correctly.
    auto run = [](std::uint64_t seed) {
        Fixture f{150};
        return runQei(f.world, f.prep,
                      DriverConfig(SchemeConfig::coreIntegrated())
                          .withTraffic(std::make_shared<PoissonOpenLoop>(
                              4000.0, seed)));
    };
    const QeiRunStats a = run(21);
    const QeiRunStats b = run(21);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.resultChecksum, b.resultChecksum);
    EXPECT_EQ(a.sojourn.p99, b.sojourn.p99);

    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(a.queries, 150u);
    EXPECT_EQ(a.sojourn.count, 150u);
    EXPECT_GT(a.sojourn.p50, 0.0);
    EXPECT_LE(a.sojourn.p50, a.sojourn.p99);
    EXPECT_LE(a.sojourn.p99, a.sojourn.p999);
    // At ~2.5% offered load the line is almost always idle.
    EXPECT_LT(a.queueWait.mean, a.service.mean);

    const QeiRunStats c = run(22);
    EXPECT_NE(a.cycles, c.cycles);
}

TEST(Traffic, OpenLoopSaturationRaisesQueueWait)
{
    auto p99At = [](double mean_gap) {
        Fixture f{200};
        const QeiRunStats s =
            runQei(f.world, f.prep,
                   DriverConfig(SchemeConfig::coreIntegrated())
                       .withTraffic(std::make_shared<PoissonOpenLoop>(
                           mean_gap, 9)));
        return s.queueWait.p99;
    };
    // Arrivals far faster than service vs far slower: queueing theory
    // in one assert.
    EXPECT_GT(p99At(10.0), p99At(5000.0));
}
