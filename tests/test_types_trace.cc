// Unit tests for the address-math helpers every layer leans on, plus
// the QueryTrace instruction accounting behind Fig. 11.

#include <gtest/gtest.h>

#include "common/types.hh"
#include "core/trace.hh"

using namespace qei;

TEST(AddressMath, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(130), 128u);
    EXPECT_EQ(lineOffset(130), 2u);
    EXPECT_EQ(lineOffset(64), 0u);
}

TEST(AddressMath, PageHelpers)
{
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_EQ(pageNumber(4096), 1u);
    EXPECT_EQ(pageNumber(8191), 1u);
    EXPECT_EQ(pageOffset(4097), 1u);
}

TEST(AddressMath, LinesCovering)
{
    EXPECT_EQ(linesCovering(0, 0), 0u);
    EXPECT_EQ(linesCovering(0, 1), 1u);
    EXPECT_EQ(linesCovering(0, 64), 1u);
    EXPECT_EQ(linesCovering(0, 65), 2u);
    EXPECT_EQ(linesCovering(63, 2), 2u);   // straddles a boundary
    EXPECT_EQ(linesCovering(60, 100), 3u); // 60..159 -> 0,64,128
    EXPECT_EQ(linesCovering(64, 64), 1u);
}

TEST(AddressMath, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(65));
}

TEST(AddressMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2((1ULL << 33) + 5), 33u);
}

TEST(AddressMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 8), 0u);
    EXPECT_EQ(divCeil(1, 8), 1u);
    EXPECT_EQ(divCeil(8, 8), 1u);
    EXPECT_EQ(divCeil(9, 8), 2u);
    EXPECT_EQ(divCeil(100, 7), 15u);
}

TEST(QueryTrace, DynamicInstructionsCountLoadsAndSlices)
{
    QueryTrace t;
    MemTouch a;
    a.instrBefore = 10;
    a.branchesBefore = 2;
    a.mispredictsBefore = 1;
    MemTouch b;
    b.instrBefore = 5;
    t.touches = {a, b};
    t.instrAfter = 3;
    t.branchesAfter = 1;
    t.mispredictsAfter = 1;
    // 10 + 1 (load) + 5 + 1 (load) + 3 after.
    EXPECT_EQ(t.dynamicInstructions(), 20u);
    EXPECT_EQ(t.branches(), 3u);
    EXPECT_EQ(t.mispredicts(), 2u);
}

TEST(QueryTrace, EmptyTraceOnlyCountsTail)
{
    QueryTrace t;
    t.instrAfter = 7;
    EXPECT_EQ(t.dynamicInstructions(), 7u);
    EXPECT_EQ(t.branches(), 0u);
}

TEST(QueryTrace, DefaultsAreSane)
{
    MemTouch t;
    EXPECT_TRUE(t.dependsOnPrev);
    EXPECT_FALSE(t.isStore);
    EXPECT_EQ(t.computeLatency, 2u);
}

TEST(RoiProfile, DefaultsMatchDocs)
{
    RoiProfile p;
    EXPECT_EQ(p.nonQueryInstrPerOp, 40u);
    EXPECT_GT(p.roiFraction, 0.0);
    EXPECT_LT(p.roiFraction, 1.0);
}
