// Software update path (Sec. IV-A): inserts and deletes stay on the
// core while QEI accelerates the reads between them. These tests
// check the functional interleaving (QEI observes every update), the
// store-side core modeling, and the single-writer memory discipline.

#include <gtest/gtest.h>

#include <map>

#include "ds/chained_hash.hh"
#include "ds/linked_list.hh"
#include "workloads/workload.hh"

using namespace qei;

namespace {

struct UpdateHarness
{
    UpdateHarness() : world(21), rng(6)
    {
        std::vector<std::pair<Key, std::uint64_t>> items;
        for (int i = 0; i < 150; ++i) {
            Key k = randomKey(rng, 16);
            items.emplace_back(k, 100 + i);
            reference[k] = 100 + static_cast<std::uint64_t>(i);
        }
        table = std::make_unique<SimChainedHash>(world.vm, items, 64);
        for (auto& [k, v] : items)
            universe.push_back(k);
    }

    Key
    someKey()
    {
        return universe[rng.below(universe.size())];
    }

    World world;
    Rng rng;
    std::unique_ptr<SimChainedHash> table;
    std::vector<Key> universe;
    std::map<Key, std::uint64_t> reference;
};

} // namespace

TEST(Updates, InsertOverwriteAndEraseTrackReference)
{
    UpdateHarness h;
    for (int op = 0; op < 400; ++op) {
        const int kind = static_cast<int>(h.rng.below(3));
        if (kind == 0) { // insert (possibly fresh key)
            Key k = h.rng.chance(0.5) ? h.someKey()
                                      : randomKey(h.rng, 16);
            const std::uint64_t v = 5000 + static_cast<std::uint64_t>(op);
            h.table->insert(k, v);
            h.reference[k] = v;
            h.universe.push_back(std::move(k));
        } else if (kind == 1) { // erase
            const Key k = h.someKey();
            const QueryTrace t = h.table->erase(k);
            EXPECT_EQ(t.found, h.reference.erase(k) > 0);
        } else { // query
            const Key k = h.someKey();
            const QueryTrace t = h.table->query(k);
            auto it = h.reference.find(k);
            ASSERT_EQ(t.found, it != h.reference.end());
            if (t.found)
                EXPECT_EQ(t.resultValue, it->second);
        }
    }
    EXPECT_EQ(h.table->size(), h.reference.size());
}

TEST(Updates, InsertTraceCarriesStores)
{
    UpdateHarness h;
    const QueryTrace t = h.table->insert(randomKey(h.rng, 16), 9);
    int stores = 0;
    for (const auto& touch : t.touches)
        stores += touch.isStore ? 1 : 0;
    EXPECT_GE(stores, 2); // node fill + head link
}

TEST(Updates, QeiSeesSoftwareUpdatesBetweenBatches)
{
    UpdateHarness h;
    // Phase 1: QEI queries the pristine table.
    auto makePrep = [&](const std::vector<Key>& keys) {
        Prepared prep;
        prep.profile.nonQueryInstrPerOp = 15;
        for (const auto& k : keys) {
            QueryTrace t = h.table->query(k);
            QueryJob job;
            job.headerAddr = h.table->headerAddr();
            job.keyAddr = h.table->stageKey(k);
            job.resultAddr = h.world.vm.alloc(16, 16);
            job.expectFound = t.found;
            job.expectValue = t.resultValue;
            prep.jobs.push_back(job);
            prep.traces.push_back(std::move(t));
        }
        return prep;
    };

    std::vector<Key> probe;
    for (int i = 0; i < 20; ++i)
        probe.push_back(h.someKey());
    const Prepared before = makePrep(probe);
    EXPECT_EQ(runQei(h.world, before, DriverConfig(SchemeConfig::coreIntegrated()))
                  .mismatches,
              0u);

    // Software updates: delete half the probed keys, re-insert one
    // with a new value (core-side stores; QEI is quiesced).
    for (int i = 0; i < 10; ++i)
        h.table->erase(probe[static_cast<std::size_t>(i)]);
    h.table->insert(probe[0], 0xFEED);

    // Phase 2: QEI immediately observes the new state.
    const Prepared after = makePrep(probe);
    EXPECT_EQ(after.traces[0].resultValue, 0xFEEDu);
    for (int i = 1; i < 10; ++i)
        EXPECT_FALSE(after.traces[static_cast<std::size_t>(i)].found);
    EXPECT_EQ(runQei(h.world, after, DriverConfig(SchemeConfig::coreIntegrated()))
                  .mismatches,
              0u);
}

TEST(Updates, StoresCountedAndSqPressureCosts)
{
    UpdateHarness h;
    // A pure-update stream exercises the SQ path of the core model.
    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 5;
    for (int i = 0; i < 200; ++i)
        prep.traces.push_back(
            h.table->insert(randomKey(h.rng, 16), 77));
    const CoreRunResult r = runBaseline(h.world, prep);
    EXPECT_GT(r.stores, 300u); // ~2 stores per insert
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.ipc(), 4.0);
}

TEST(Updates, EraseFromSingletonBucketEmptiesIt)
{
    World world(33);
    Rng rng(1);
    std::vector<std::pair<Key, std::uint64_t>> items;
    items.emplace_back(randomKey(rng, 8), 1);
    SimChainedHash table(world.vm, items, 16);
    EXPECT_TRUE(table.erase(items[0].first).found);
    EXPECT_FALSE(table.query(items[0].first).found);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_FALSE(table.erase(items[0].first).found); // idempotent
}

TEST(Updates, LinkedListHeadInsertRepublishesHeader)
{
    World world(44);
    Rng rng(2);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 12; ++i)
        items.emplace_back(randomKey(rng, 16), 100 + i);
    SimLinkedList list(world.vm, items);

    const Key fresh = randomKey(rng, 16);
    list.insertFront(fresh, 0xABCD);
    // The header now names the new root.
    const StructHeader h =
        StructHeader::readFrom(world.vm, list.headerAddr());
    EXPECT_EQ(h.root, list.rootAddr());
    EXPECT_EQ(h.size, 13u);

    // QEI immediately finds the new key through the same header.
    Prepared prep;
    prep.profile.nonQueryInstrPerOp = 10;
    QueryTrace t = list.query(fresh);
    ASSERT_TRUE(t.found);
    QueryJob job;
    job.headerAddr = list.headerAddr();
    job.keyAddr = list.stageKey(fresh);
    job.resultAddr = world.vm.alloc(16, 16);
    job.expectFound = true;
    job.expectValue = 0xABCD;
    prep.jobs.push_back(job);
    prep.traces.push_back(std::move(t));
    EXPECT_EQ(runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()))
                  .mismatches,
              0u);
}

TEST(Updates, LinkedListEraseHeadAndMiddle)
{
    World world(45);
    Rng rng(3);
    std::vector<std::pair<Key, std::uint64_t>> items;
    for (int i = 0; i < 8; ++i)
        items.emplace_back(randomKey(rng, 16), i);
    SimLinkedList list(world.vm, items);

    // Erase the head: root moves, header follows.
    EXPECT_TRUE(list.erase(items[0].first).found);
    EXPECT_FALSE(list.query(items[0].first).found);
    EXPECT_EQ(StructHeader::readFrom(world.vm, list.headerAddr()).root,
              list.rootAddr());

    // Erase from the middle: predecessor relink, everything else
    // still reachable.
    EXPECT_TRUE(list.erase(items[4].first).found);
    EXPECT_FALSE(list.query(items[4].first).found);
    for (int i : {1, 2, 3, 5, 6, 7})
        EXPECT_TRUE(
            list.query(items[static_cast<std::size_t>(i)].first).found)
            << i;
    EXPECT_EQ(list.size(), 6u);

    // Erasing a missing key is a full-walk miss.
    EXPECT_FALSE(list.erase(items[0].first).found);
}
