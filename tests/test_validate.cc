/**
 * Tests for the qei::validate paper-fidelity subsystem: metric path
 * resolution, band/ordering/shape evaluation with their tolerance
 * edges, artifact embedding, and byte-stable EXPERIMENTS.md
 * regeneration.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "validate/expectation.hh"
#include "validate/experiments.hh"

using namespace qei;
using namespace qei::validate;

namespace {

/** Minimal artifact shaped like a BenchReport payload. */
Json
fixtureArtifact()
{
    Json root = Json::object();
    root["bench"] = "fig07_speedup";
    root["schema_version"] = 3;
    Json workloads = Json::array();
    for (const auto& [name, fast, slow] :
         {std::tuple{"dpdk", 10.5, 1.0},
          std::tuple{"rocksdb", 2.5, 0.4}}) {
        Json w = Json::object();
        w["workload"] = name;
        Json schemes = Json::object();
        Json a = Json::object();
        a["speedup"] = fast;
        schemes["CHA-TLB"] = std::move(a);
        Json b = Json::object();
        b["speedup"] = slow;
        schemes["Device-indirect"] = std::move(b);
        w["schemes"] = std::move(schemes);
        workloads.push_back(std::move(w));
    }
    root["workloads"] = std::move(workloads);
    root["geomean"] = 4.5;
    return root;
}

TEST(JsonResolve, DottedPathAndSelectors)
{
    const Json root = fixtureArtifact();
    const Json* node = root.resolve("geomean");
    ASSERT_NE(node, nullptr);
    EXPECT_DOUBLE_EQ(node->asDouble(), 4.5);

    node = root.resolve(
        "workloads.[workload=rocksdb].schemes.CHA-TLB.speedup");
    ASSERT_NE(node, nullptr);
    EXPECT_DOUBLE_EQ(node->asDouble(), 2.5);

    // Positional index into the array.
    node = root.resolve("workloads.[1].workload");
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->asString(), "rocksdb");

    // Failures resolve to nullptr, never throw.
    EXPECT_EQ(root.resolve("workloads.[workload=nope].x"), nullptr);
    EXPECT_EQ(root.resolve("geomean.too.deep"), nullptr);
    EXPECT_EQ(root.resolve("workloads.[9].workload"), nullptr);
    EXPECT_EQ(root.resolve(""), nullptr);
}

TEST(Evaluate, BandVerdictsAcrossTheTolerance)
{
    const Json root = fixtureArtifact();
    // geomean = 4.5; band [4.0, 5.0], 10% warn margin (of 5.0 = 0.5).
    const auto band = [&](double lo, double hi) {
        return evaluate(Expectation::range("g", "Fig. 7", "geomean",
                                           "geomean", "x", lo, hi,
                                           0.10),
                        root);
    };
    EXPECT_EQ(band(4.0, 5.0).verdict, Verdict::Pass);
    // Exactly on the boundary is inclusive PASS.
    EXPECT_EQ(band(4.5, 5.0).verdict, Verdict::Pass);
    EXPECT_EQ(band(4.0, 4.5).verdict, Verdict::Pass);
    // Outside the band but within margin: WARN. Band [4.6, 5.0] has
    // margin 0.5, so 4.5 >= 4.6 - 0.5.
    EXPECT_EQ(band(4.6, 5.0).verdict, Verdict::Warn);
    // Exactly at the WARN edge (band [5.0, 5.0], margin 0.5,
    // 4.5 == 5.0 - 0.5) still rates WARN.
    EXPECT_EQ(band(5.0, 5.0).verdict, Verdict::Warn);
    // Beyond the margin (band [5.2, 6.0] has margin 0.6, and
    // 4.5 < 5.2 - 0.6): FAIL.
    EXPECT_EQ(band(5.2, 6.0).verdict, Verdict::Fail);

    const Outcome missing = evaluate(
        Expectation::range("m", "Fig. 7", "missing", "nope", "x", 0.0,
                           1.0),
        root);
    EXPECT_EQ(missing.verdict, Verdict::Fail);
    EXPECT_FALSE(missing.haveMeasured);
}

TEST(Evaluate, ExactAndNearFactories)
{
    Json root = Json::object();
    root["cores"] = 24;
    EXPECT_EQ(evaluate(Expectation::exact("c", "Tab. II", "cores",
                                          "cores", "", 24.0),
                       root)
                  .verdict,
              Verdict::Pass);
    EXPECT_EQ(evaluate(Expectation::exact("c", "Tab. II", "cores",
                                          "cores", "", 25.0),
                       root)
                  .verdict,
              Verdict::Fail);
    // near: 24 within 10% of 26, not of 30.
    EXPECT_EQ(evaluate(Expectation::near("c", "Tab. II", "cores",
                                         "cores", "", 26.0, 0.10),
                       root)
                  .verdict,
              Verdict::Pass);
    EXPECT_EQ(evaluate(Expectation::near("c", "Tab. II", "cores",
                                         "cores", "", 30.0, 0.10,
                                         0.0),
                       root)
                  .verdict,
              Verdict::Fail);
}

TEST(Evaluate, OrderingSlackSemantics)
{
    const Json root = fixtureArtifact();
    const std::string a =
        "workloads.[workload=rocksdb].schemes.CHA-TLB.speedup"; // 2.5
    const std::string b =
        "workloads.[workload=dpdk].schemes.CHA-TLB.speedup"; // 10.5
    // Plain ordering holds.
    EXPECT_EQ(evaluate(Expectation::ordering("o", "Fig. 7", "lt", a,
                                             Relation::Lt, b),
                       root)
                  .verdict,
              Verdict::Pass);
    // Violated ordering with no slack: 10.5 < 2.5 is false, and
    // 10.5 > 2.5 * 1.10 (the default warn slack), so FAIL.
    EXPECT_EQ(evaluate(Expectation::ordering("o", "Fig. 7", "lt", b,
                                             Relation::Lt, a),
                       root)
                  .verdict,
              Verdict::Fail);
    // "On par" slack: 2.5 >= 10.5 fails flat but passes with a slack
    // that relaxes the RHS below 2.5 (1 - 0.8 => 2.1).
    EXPECT_EQ(evaluate(Expectation::ordering("o", "Fig. 7", "ge", a,
                                             Relation::Ge, b, 0.80),
                       root)
                  .verdict,
              Verdict::Pass);
    // Between the pass slack and warn slack: WARN. RHS*0.75 = 7.875
    // still above 2.5? no — use values where only warn band holds:
    // a=2.5 vs b*(1-0.70)=3.15 fails, b*(1-0.80)=2.1 warns.
    EXPECT_EQ(evaluate(Expectation::ordering("o", "Fig. 7", "ge", a,
                                             Relation::Ge, b, 0.70,
                                             {}, 0.80),
                       root)
                  .verdict,
              Verdict::Warn);
    // Missing right-hand side: FAIL, never throws.
    EXPECT_EQ(evaluate(Expectation::ordering("o", "Fig. 7", "x", a,
                                             Relation::Lt, "nope"),
                       root)
                  .verdict,
              Verdict::Fail);
}

TEST(Evaluate, ShapeAndOverallFold)
{
    const Json root = fixtureArtifact();
    Suite suite;
    suite.title = "t";
    suite.expectations.push_back(
        Expectation::shape("s1", "Sec. V", "holds", true, "ok"));
    suite.expectations.push_back(Expectation::range(
        "g", "Fig. 7", "geomean", "geomean", "x", 4.0, 5.0));
    std::vector<Outcome> outcomes = evaluate(suite, root);
    EXPECT_EQ(overall(outcomes), Verdict::Pass);

    suite.expectations.push_back(
        Expectation::shape("s2", "Sec. V", "broken", false, "bad"));
    outcomes = evaluate(suite, root);
    EXPECT_EQ(overall(outcomes), Verdict::Fail);
    EXPECT_EQ(worseOf(Verdict::Pass, Verdict::Warn), Verdict::Warn);
    EXPECT_EQ(worseOf(Verdict::Fail, Verdict::Warn), Verdict::Fail);
}

TEST(Artifact, ValidationBlockEmbedsMetadataAndCounts)
{
    const Json root = fixtureArtifact();
    Suite suite;
    suite.title = "Fig. 7 — test";
    suite.preamble = "preamble text";
    suite.expectations.push_back(Expectation::reanchored(
        "re", "Fig. 7", "re-anchored check", "geomean", "x", 8.0, 8.0,
        4.0, 5.0, 0.10, "why the gate moved"));
    suite.expectations.push_back(Expectation::ordering(
        "ord", "Fig. 7", "ordering check",
        "workloads.[workload=dpdk].schemes.CHA-TLB.speedup",
        Relation::Gt,
        "workloads.[workload=rocksdb].schemes.CHA-TLB.speedup"));
    const std::vector<Outcome> outcomes = evaluate(suite, root);
    const Json block = toJson(suite, outcomes);

    EXPECT_EQ(block.at("verdict").asString(), "PASS");
    EXPECT_EQ(block.at("counts").at("pass").asInt(), 2);
    EXPECT_EQ(block.at("counts").at("fail").asInt(), 0);
    const Json& first = *block.at("expectations").resolve("[id=re]");
    EXPECT_EQ(first.at("kind").asString(), "band");
    EXPECT_DOUBLE_EQ(first.at("paper_lo").asDouble(), 8.0);
    EXPECT_DOUBLE_EQ(first.at("gate_hi").asDouble(), 5.0);
    EXPECT_EQ(first.at("note").asString(), "why the gate moved");
    EXPECT_DOUBLE_EQ(first.at("value").asDouble(), 4.5);
    const Json& second = *block.at("expectations").resolve("[id=ord]");
    EXPECT_EQ(second.at("relation").asString(), ">");
    EXPECT_DOUBLE_EQ(second.at("value_b").asDouble(), 2.5);
}

TEST(Experiments, RenderIsByteStableAndCanonicallyOrdered)
{
    // Two artifacts, deliberately passed in non-canonical order.
    Json fig07 = fixtureArtifact();
    Suite suite;
    suite.title = "Fig. 7 — test";
    suite.preamble = "para";
    suite.expectations.push_back(Expectation::range(
        "g", "Fig. 7", "geomean", "geomean", "x", 4.0, 5.0, 0.10,
        "a note"));
    fig07["validation"] = toJson(suite, evaluate(suite, fig07));

    Json fig01 = Json::object();
    fig01["bench"] = "fig01_profiling";
    // No validation block: placeholder section.

    const std::vector<Json> reversed{fig07, fig01};
    const std::string a = renderExperiments(reversed);
    const std::string b = renderExperiments(reversed);
    EXPECT_EQ(a, b) << "regeneration must be byte-stable";

    // Canonical order puts fig01 before fig07 regardless of input
    // order.
    const auto posFig01 = a.find("`fig01_profiling`");
    const auto posFig07 = a.find("Fig. 7 — test");
    ASSERT_NE(posFig01, std::string::npos);
    ASSERT_NE(posFig07, std::string::npos);
    EXPECT_LT(posFig01, posFig07);

    // The table carries the check, paper value, measured value,
    // verdict, and the note.
    EXPECT_NE(a.find("| `g` | Fig. 7 | 4.00x~5.00x | 4.50x | PASS |"),
              std::string::npos)
        << a;
    EXPECT_NE(a.find("- `g` — a note"), std::string::npos);
    EXPECT_NE(a.find("GENERATED FILE"), std::string::npos);

    // Same artifacts in canonical order render identically.
    const std::vector<Json> canonical{fig01, fig07};
    EXPECT_EQ(renderExperiments(canonical), a);
}

TEST(Experiments, CanonicalOrderCoversAllHarnesses)
{
    const std::vector<std::string>& order = canonicalBenchOrder();
    EXPECT_EQ(order.size(), 20u);
    EXPECT_EQ(order.front(), "fig01_profiling");
    EXPECT_EQ(order.back(), "debug_probe");
}

TEST(Format, ValueFormattingIsDeterministic)
{
    EXPECT_EQ(formatValue(0.639, "%"), "63.9%");
    EXPECT_EQ(formatValue(4.455, "x"), "4.46x");
    EXPECT_EQ(formatValue(309.0, "cyc"), "309 cyc");
    EXPECT_EQ(formatValue(0.1791, "mm^2"), "0.1791 mm^2");
    EXPECT_EQ(formatValue(24.0, ""), "24");
}

} // namespace
