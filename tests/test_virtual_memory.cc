#include <gtest/gtest.h>

#include <set>

#include "vm/virtual_memory.hh"

using namespace qei;

namespace {

SimMemory&
sharedMemory()
{
    static SimMemory mem(1ULL << 32);
    return mem;
}

} // namespace

TEST(VirtualMemory, AllocRespectsAlignment)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    const Addr a = vm.alloc(10, 8);
    const Addr b = vm.alloc(10, 64);
    const Addr c = vm.alloc(10, 4096);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 4096, 0u);
}

TEST(VirtualMemory, AllocationsDoNotOverlap)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    const Addr a = vm.alloc(100);
    const Addr b = vm.alloc(100);
    EXPECT_GE(b, a + 100);
}

TEST(VirtualMemory, ReadWriteThroughTranslation)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    const Addr a = vm.alloc(4096 * 3);
    // Spans multiple (scattered) physical pages.
    std::vector<std::uint8_t> pattern(4096 * 3);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 7);
    vm.writeBytes(a, pattern.data(), pattern.size());
    std::vector<std::uint8_t> out(pattern.size());
    vm.readBytes(a, out.data(), out.size());
    EXPECT_EQ(pattern, out);
}

TEST(VirtualMemory, FragmentedModeScattersFrames)
{
    SimMemory mem(1 << 28);
    VirtualMemory vm(mem, FrameAllocator::Mode::Fragmented, 3);
    const Addr base = vm.alloc(kPageBytes * 16, kPageBytes);
    bool contiguous = true;
    Addr prev = vm.translate(base);
    for (int p = 1; p < 16; ++p) {
        const Addr cur = vm.translate(base + p * kPageBytes);
        if (cur != prev + kPageBytes)
            contiguous = false;
        prev = cur;
    }
    EXPECT_FALSE(contiguous)
        << "fragmented allocator produced a contiguous mapping";
}

TEST(VirtualMemory, ContiguousModeIsContiguous)
{
    SimMemory mem(1 << 28);
    VirtualMemory vm(mem, FrameAllocator::Mode::Contiguous);
    const Addr base = vm.alloc(kPageBytes * 16, kPageBytes);
    for (int p = 1; p < 16; ++p) {
        EXPECT_EQ(vm.translate(base + p * kPageBytes),
                  vm.translate(base) + static_cast<Addr>(p) *
                                           kPageBytes);
    }
}

TEST(VirtualMemory, TranslatePreservesPageOffset)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    const Addr a = vm.alloc(100, 8);
    EXPECT_EQ(pageOffset(vm.translate(a)), pageOffset(a));
}

TEST(VirtualMemory, TryTranslateUnmappedIsNull)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    EXPECT_FALSE(vm.tryTranslate(0x10).has_value());
    EXPECT_FALSE(vm.tryTranslate(VirtualMemory::kHeapBase +
                                 (1ULL << 33))
                     .has_value());
}

TEST(VirtualMemory, NullAddressNeverMapped)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    vm.alloc(1 << 20);
    EXPECT_FALSE(vm.tryTranslate(kNullAddr).has_value());
}

TEST(VirtualMemory, FramesNeverReused)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    std::set<Addr> frames;
    const Addr base = vm.alloc(kPageBytes * 64, kPageBytes);
    for (int p = 0; p < 64; ++p)
        frames.insert(pageNumber(vm.translate(base + p * kPageBytes)));
    EXPECT_EQ(frames.size(), 64u);
}

TEST(VirtualMemory, BytesAllocatedTracksBrk)
{
    SimMemory mem(1 << 26);
    VirtualMemory vm(mem);
    vm.alloc(100, 8);
    EXPECT_GE(vm.bytesAllocated(), 100u);
}

TEST(VirtualMemoryDeath, TranslateUnmappedPanics)
{
    SimMemory& mem = sharedMemory();
    VirtualMemory vm(mem);
    EXPECT_DEATH((void)vm.translate(0x20), "unmapped");
}

TEST(VirtualMemoryDeath, ZeroAllocPanics)
{
    SimMemory& mem = sharedMemory();
    VirtualMemory vm(mem);
    EXPECT_DEATH((void)vm.alloc(0), "zero-byte");
}

TEST(VirtualMemoryDeath, BadAlignmentPanics)
{
    SimMemory& mem = sharedMemory();
    VirtualMemory vm(mem);
    EXPECT_DEATH((void)vm.alloc(8, 3), "power of two");
}
