// Workload-level integration tests: every paper workload builds,
// prepares matched streams, runs functionally clean on QEI, and shows
// the paper's qualitative behaviours (with small query counts so the
// suite stays fast).

#include <gtest/gtest.h>

#include "workloads/dpdk_fib.hh"
#include "workloads/flann_lsh.hh"
#include "workloads/jvm_gc.hh"
#include "workloads/rocksdb_memtable.hh"
#include "workloads/snort_ac.hh"

using namespace qei;

namespace {

/** Small-footprint variants so each test runs in well under a second. */
template <typename W, typename... Args>
void
runWorkloadChecks(std::size_t queries, Args&&... args)
{
    W workload(std::forward<Args>(args)...);
    World world(17);
    workload.build(world);
    Prepared prep = workload.prepare(world, queries);
    ASSERT_FALSE(prep.jobs.empty());
    ASSERT_EQ(prep.jobs.size(), prep.traces.size());

    const CoreRunResult baseline = runBaseline(world, prep);
    EXPECT_EQ(baseline.queries, prep.traces.size());
    EXPECT_GT(baseline.cycles, 0u);

    const QeiRunStats qei =
        runQei(world, prep, DriverConfig(SchemeConfig::coreIntegrated()));
    EXPECT_EQ(qei.mismatches, 0u);
    EXPECT_EQ(qei.exceptions, 0u);
    EXPECT_GT(speedupOf(baseline, qei), 1.0);
}

} // namespace

TEST(Workloads, DpdkFibFunctionalAndFaster)
{
    runWorkloadChecks<DpdkFibWorkload>(300, std::size_t{4096},
                                       std::size_t{1024});
}

TEST(Workloads, JvmGcFunctionalAndFaster)
{
    runWorkloadChecks<JvmGcWorkload>(200, std::size_t{20000});
}

TEST(Workloads, RocksDbFunctionalAndFaster)
{
    runWorkloadChecks<RocksDbMemtableWorkload>(100, std::size_t{2000});
}

TEST(Workloads, SnortFunctionalAndFaster)
{
    runWorkloadChecks<SnortAcWorkload>(4, std::size_t{2000},
                                       std::size_t{512});
}

TEST(Workloads, FlannFunctionalAndFaster)
{
    runWorkloadChecks<FlannLshWorkload>(20, 4, std::size_t{3000});
}

TEST(Workloads, RegistryHasFivePaperWorkloads)
{
    const auto all = makeAllWorkloads();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0]->name(), "dpdk");
    EXPECT_EQ(all[1]->name(), "jvm");
    EXPECT_EQ(all[2]->name(), "rocksdb");
    EXPECT_EQ(all[3]->name(), "snort");
    EXPECT_EQ(all[4]->name(), "flann");
    for (const auto& w : all) {
        EXPECT_FALSE(w->description().empty());
        EXPECT_GT(w->defaultQueries(), 0u);
    }
}

TEST(Workloads, RoiFractionsInPaperBand)
{
    // Fig. 1: query operations take 23%~44% of CPU time.
    DpdkFibWorkload dpdk(4096, 1024);
    World world(17);
    dpdk.build(world);
    const Prepared prep = dpdk.prepare(world, 10);
    EXPECT_GE(prep.profile.roiFraction, 0.23);
    EXPECT_LE(prep.profile.roiFraction, 0.44);
}

TEST(Workloads, BaselineQueriesAreHundredsOfInstructions)
{
    // Sec. II-A: "each query operation can easily generate hundreds
    // of dynamic instructions" — true for the pointer-chasing ones.
    JvmGcWorkload jvm(20000);
    World world(17);
    jvm.build(world);
    const Prepared prep = jvm.prepare(world, 50);
    double instr = 0;
    for (const auto& t : prep.traces)
        instr += t.dynamicInstructions();
    EXPECT_GT(instr / 50.0, 100.0);
}

TEST(Workloads, DpdkTouchesFewLinesPerQuery)
{
    // Hash query: small fixed number of accesses (Sec. VII-A).
    DpdkFibWorkload dpdk(4096, 1024);
    World world(17);
    dpdk.build(world);
    const Prepared prep = dpdk.prepare(world, 100);
    double touches = 0;
    for (const auto& t : prep.traces)
        touches += static_cast<double>(t.touches.size());
    EXPECT_LT(touches / 100.0, 8.0);
}

TEST(Workloads, JvmTreeWalksManyNodes)
{
    JvmGcWorkload jvm(100000);
    World world(17);
    jvm.build(world);
    const Prepared prep = jvm.prepare(world, 50);
    double touches = 0;
    for (const auto& t : prep.traces)
        touches += static_cast<double>(t.touches.size());
    // The paper measures 39.9 accesses per JVM query; our tree is in
    // the same regime (> 10 dependent accesses).
    EXPECT_GT(touches / 50.0, 10.0);
}

TEST(Workloads, PreparedStreamsAreDeterministic)
{
    DpdkFibWorkload a(2048, 512);
    DpdkFibWorkload b(2048, 512);
    World wa(99);
    World wb(99);
    a.build(wa);
    b.build(wb);
    const Prepared pa = a.prepare(wa, 20);
    const Prepared pb = b.prepare(wb, 20);
    ASSERT_EQ(pa.jobs.size(), pb.jobs.size());
    for (std::size_t i = 0; i < pa.jobs.size(); ++i) {
        EXPECT_EQ(pa.jobs[i].expectFound, pb.jobs[i].expectFound);
        EXPECT_EQ(pa.jobs[i].expectValue, pb.jobs[i].expectValue);
    }
}
