/**
 * @file
 * qei-calibrate: fit the offload planner's cost model from committed
 * BENCH artifacts.
 *
 * Reads the fig07 speedup artifact (the per-workload cycles/query of
 * the software baseline and of every integration scheme) and emits
 * the planner's calibration as perf/cost_model.json. The same numbers
 * are baked into CostModel::builtin() so the simulator needs no
 * filesystem access at run time; `--check` verifies artifact, JSON,
 * and builtin all agree, which is what CI runs.
 *
 *   qei-calibrate [--artifact BENCH_out/BENCH_fig07_speedup.json]
 *                 [--out perf/cost_model.json] [--check]
 *
 * With --check, no file is written: the tool recomputes the model
 * from the artifact and diffs it against both the committed JSON and
 * the builtin table (tolerance 1e-3 cycles/query), exiting non-zero
 * on any drift. Regenerate with the same command minus --check.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"
#include "qei/planner.hh"

namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "qei-calibrate: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Fit the model from the fig07 artifact's cycles/query numbers. */
qei::CostModel
fitFromArtifact(const qei::Json& doc)
{
    qei::CostModel model;
    const qei::Json* workloads = doc.find("workloads");
    if (workloads == nullptr || !workloads->isArray()) {
        std::fprintf(stderr,
                     "qei-calibrate: artifact has no 'workloads' "
                     "array (is this BENCH_fig07_speedup.json?)\n");
        std::exit(2);
    }
    for (const qei::Json& w : workloads->elements()) {
        qei::CostModel::WorkloadCosts costs;
        costs.core = w.at("baseline")
                         .at("cycles_per_query")
                         .asDouble();
        for (const auto& [scheme, stats] : w.at("schemes").items())
            costs.schemes[scheme] =
                stats.at("cycles_per_query").asDouble();
        model.set(w.at("workload").asString(), std::move(costs));
    }
    return model;
}

/** Max absolute cycles/query difference between two models. */
double
modelDelta(const qei::CostModel& a, const qei::CostModel& b)
{
    double worst = 0.0;
    auto fold = [&](const qei::CostModel& x, const qei::CostModel& y) {
        for (const auto& [name, costs] : x.workloads()) {
            worst = std::max(
                worst, std::abs(costs.core - y.coreCost(name)));
            for (const auto& [scheme, cycles] : costs.schemes) {
                worst = std::max(
                    worst,
                    std::abs(cycles - y.schemeCost(name, scheme)));
            }
        }
    };
    fold(a, b);
    fold(b, a); // catches workloads/schemes present on one side only
    return worst;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string artifactPath = "BENCH_out/BENCH_fig07_speedup.json";
    std::string outPath = "perf/cost_model.json";
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        auto operand = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "qei-calibrate: %s needs an argument\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--artifact") == 0) {
            artifactPath = operand("--artifact");
        } else if (std::strcmp(arg, "--out") == 0) {
            outPath = operand("--out");
        } else if (std::strcmp(arg, "--check") == 0) {
            check = true;
        } else {
            std::fprintf(stderr,
                         "usage: qei-calibrate [--artifact <fig07 "
                         "json>] [--out <cost_model.json>] "
                         "[--check]\n");
            return 2;
        }
    }

    const qei::Json artifact =
        qei::Json::parse(readFile(artifactPath));
    const qei::CostModel fitted = fitFromArtifact(artifact);
    constexpr double kTolerance = 1e-3;

    if (check) {
        bool ok = true;
        const double builtinDelta =
            modelDelta(fitted, qei::CostModel::builtin());
        if (builtinDelta > kTolerance) {
            std::fprintf(stderr,
                         "CostModel::builtin() drifted from %s by "
                         "%.4f cycles/query — re-run qei-calibrate "
                         "and update planner.cc\n",
                         artifactPath.c_str(), builtinDelta);
            ok = false;
        }
        const qei::CostModel committed =
            qei::CostModel::fromJson(qei::Json::parse(readFile(outPath)));
        const double jsonDelta = modelDelta(fitted, committed);
        if (jsonDelta > kTolerance) {
            std::fprintf(stderr,
                         "%s drifted from %s by %.4f cycles/query — "
                         "re-run qei-calibrate\n",
                         outPath.c_str(), artifactPath.c_str(),
                         jsonDelta);
            ok = false;
        }
        if (ok) {
            std::printf("cost model in sync: %s == %s == builtin "
                        "(tolerance %.0e)\n",
                        outPath.c_str(), artifactPath.c_str(),
                        kTolerance);
        }
        return ok ? 0 : 1;
    }

    std::ofstream out(outPath);
    if (!out) {
        std::fprintf(stderr, "qei-calibrate: cannot write %s\n",
                     outPath.c_str());
        return 2;
    }
    out << fitted.toJson().dump(2) << '\n';
    out.flush();
    if (!out) {
        std::fprintf(stderr, "qei-calibrate: failed writing %s\n",
                     outPath.c_str());
        return 2;
    }
    std::printf("wrote %s (%zu workloads)\n", outPath.c_str(),
                fitted.workloads().size());
    return 0;
}
