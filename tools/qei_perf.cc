/**
 * qei-perf — fold the host/sim self-metrics of successive BENCH_*.json
 * artifact sets into a perf-trajectory file, and gate new runs against
 * the trajectory's most recent entry.
 *
 * Usage:
 *   qei-perf fold --out TRAJ.json [--label NAME] BENCH_a.json ...
 *       append one entry folded from the artifacts to TRAJ.json
 *       (created when missing)
 *   qei-perf check --against TRAJ.json [--tol FRAC] [--host-tol FRAC]
 *            BENCH_a.json ...
 *       fold the artifacts and compare against TRAJ.json's last entry
 *   qei-perf --check TRAJ.json BENCH_a.json ...
 *       shorthand for `check --against TRAJ.json`
 *
 * Deterministic simulation metrics (mean_cycles_per_query) gate on
 * every check (default tolerance 2%); host metrics (host_wall_ms,
 * sim_events_per_sec) gate only when --host-tol is given, since they
 * only compare meaningfully across runs on one machine.
 *
 * Exit code: 0 when the fold/check succeeded and no gate fired;
 * 1 on any regression, unreadable file, or malformed trajectory.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "validate/perf_trajectory.hh"

using qei::Json;
using namespace qei::validate;

namespace {

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    *out = text.str();
    return true;
}

[[noreturn]] void
usage(int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: qei-perf fold --out TRAJ.json [--label NAME] "
        "ARTIFACT.json...\n"
        "       qei-perf check --against TRAJ.json [--tol FRAC] "
        "[--host-tol FRAC] ARTIFACT.json...\n"
        "       qei-perf --check TRAJ.json ARTIFACT.json...\n");
    std::exit(code);
}

bool
loadArtifacts(const std::vector<std::string>& paths,
              std::vector<Json>* out)
{
    for (const std::string& path : paths) {
        std::string text;
        if (!readFile(path, &text)) {
            std::fprintf(stderr, "qei-perf: cannot read %s\n",
                         path.c_str());
            return false;
        }
        try {
            out->push_back(Json::parse(text));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "qei-perf: %s: %s\n", path.c_str(),
                         e.what());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string command;
    std::string outPath;
    std::string againstPath;
    std::string label;
    PerfCheckConfig config;
    std::vector<std::string> artifactPaths;

    auto operand = [&](int& i, const char* flag) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "qei-perf: %s needs an argument\n",
                         flag);
            usage(1);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "fold") == 0 ||
            std::strcmp(arg, "check") == 0) {
            if (!command.empty())
                usage(1);
            command = arg;
        } else if (std::strcmp(arg, "--check") == 0) {
            // `--check TRAJ` shorthand for `check --against TRAJ`.
            command = "check";
            againstPath = operand(i, "--check");
        } else if (std::strcmp(arg, "--out") == 0) {
            outPath = operand(i, "--out");
        } else if (std::strcmp(arg, "--against") == 0) {
            againstPath = operand(i, "--against");
        } else if (std::strcmp(arg, "--label") == 0) {
            label = operand(i, "--label");
        } else if (std::strcmp(arg, "--tol") == 0) {
            config.simTolerance = std::atof(operand(i, "--tol"));
        } else if (std::strcmp(arg, "--host-tol") == 0) {
            config.hostTolerance =
                std::atof(operand(i, "--host-tol"));
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(0);
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "qei-perf: unknown option '%s'\n",
                         arg);
            usage(1);
        } else {
            artifactPaths.push_back(arg);
        }
    }
    if (command.empty() || artifactPaths.empty())
        usage(1);

    std::vector<Json> artifacts;
    if (!loadArtifacts(artifactPaths, &artifacts))
        return 1;

    if (command == "fold") {
        if (outPath.empty()) {
            std::fprintf(stderr, "qei-perf: fold needs --out\n");
            return 1;
        }
        Json trajectory;
        std::string text;
        if (readFile(outPath, &text)) {
            try {
                trajectory = Json::parse(text);
                (void)entriesOf(trajectory); // validate the shape
            } catch (const std::exception& e) {
                std::fprintf(stderr, "qei-perf: %s: %s\n",
                             outPath.c_str(), e.what());
                return 1;
            }
        } else {
            trajectory = emptyTrajectory();
        }
        if (label.empty()) {
            label = "entry-" +
                    std::to_string(entriesOf(trajectory).size());
        }
        appendEntry(trajectory,
                    foldArtifacts(artifacts, std::move(label)));
        std::ofstream out(outPath, std::ios::binary);
        out << trajectory.dump(2) << '\n';
        if (!out) {
            std::fprintf(stderr, "qei-perf: cannot write %s\n",
                         outPath.c_str());
            return 1;
        }
        std::printf("wrote %s (%zu entries)\n", outPath.c_str(),
                    entriesOf(trajectory).size());
        return 0;
    }

    // check
    if (againstPath.empty()) {
        std::fprintf(stderr, "qei-perf: check needs --against\n");
        return 1;
    }
    std::string text;
    if (!readFile(againstPath, &text)) {
        std::fprintf(stderr, "qei-perf: cannot read %s\n",
                     againstPath.c_str());
        return 1;
    }
    std::vector<PerfEntry> entries;
    try {
        entries = entriesOf(Json::parse(text));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "qei-perf: %s: %s\n", againstPath.c_str(),
                     e.what());
        return 1;
    }
    if (entries.empty()) {
        std::fprintf(stderr, "qei-perf: %s has no entries\n",
                     againstPath.c_str());
        return 1;
    }
    const PerfEntry& baseline = entries.back();
    const PerfEntry candidate = foldArtifacts(
        artifacts, label.empty() ? "candidate" : std::move(label));
    const PerfCheckResult result =
        checkAgainst(baseline, candidate, config);
    for (const std::string& note : result.notes)
        std::printf("note: %s\n", note.c_str());
    for (const std::string& regression : result.regressions)
        std::fprintf(stderr, "REGRESSION: %s\n", regression.c_str());
    std::printf("%s: %zu benches checked against '%s', %zu "
                "regressions\n",
                result.ok ? "OK" : "FAIL", candidate.benches.size(),
                baseline.label.c_str(), result.regressions.size());
    return result.ok ? 0 : 1;
}
