/**
 * qei-validate — fold the `validation` blocks of a set of BENCH_*.json
 * artifacts into one suite-wide verdict, and (re)generate
 * EXPERIMENTS.md from the same metadata.
 *
 * Usage:
 *   qei-validate [options] BENCH_a.json BENCH_b.json ...
 *
 * Options:
 *   --emit-experiments PATH   write the generated EXPERIMENTS.md
 *   --check-experiments PATH  fail unless PATH is byte-identical to
 *                             the regeneration (the CI docs gate)
 *   --quiet                   suppress the per-bench summary table
 *
 * Exit code: 0 when every expectation in every artifact is PASS or
 * WARN and the optional --check-experiments comparison matches;
 * 1 otherwise (any FAIL, a missing/unparseable artifact or
 * validation block, or a stale committed EXPERIMENTS.md).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/table_printer.hh"
#include "validate/expectation.hh"
#include "validate/experiments.hh"

using qei::Json;
using qei::TablePrinter;

namespace {

bool
readFile(const std::string& path, std::string* out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    *out = text.str();
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string emitPath;
    std::string checkPath;
    bool quiet = false;
    std::vector<std::string> artifactPaths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--emit-experiments" && i + 1 < argc) {
            emitPath = argv[++i];
        } else if (arg == "--check-experiments" && i + 1 < argc) {
            checkPath = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: qei-validate [--emit-experiments PATH] "
                "[--check-experiments PATH] [--quiet] "
                "ARTIFACT.json...\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "qei-validate: unknown option '%s'\n",
                         arg.c_str());
            return 1;
        } else {
            artifactPaths.push_back(arg);
        }
    }
    if (artifactPaths.empty()) {
        std::fprintf(stderr,
                     "qei-validate: no artifacts given (pass the "
                     "BENCH_*.json files produced by "
                     "scripts/run_benches.sh)\n");
        return 1;
    }

    bool ok = true;
    std::vector<Json> artifacts;
    TablePrinter table("validation summary");
    table.header({"bench", "pass", "warn", "fail", "verdict"});
    int totalPass = 0;
    int totalWarn = 0;
    int totalFail = 0;
    for (const std::string& path : artifactPaths) {
        std::string text;
        if (!readFile(path, &text)) {
            std::fprintf(stderr, "qei-validate: cannot read %s\n",
                         path.c_str());
            ok = false;
            continue;
        }
        Json artifact;
        try {
            artifact = Json::parse(text);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "qei-validate: %s: %s\n", path.c_str(),
                         e.what());
            ok = false;
            continue;
        }
        const std::string bench = artifact.contains("bench")
                                      ? artifact.at("bench").asString()
                                      : path;
        if (!artifact.contains("validation")) {
            table.row({bench, "-", "-", "-", "NO SUITE"});
            std::fprintf(stderr,
                         "qei-validate: %s has no validation block "
                         "(harness missing setValidation?)\n",
                         bench.c_str());
            ok = false;
            artifacts.push_back(std::move(artifact));
            continue;
        }
        const Json& block = artifact.at("validation");
        const Json& counts = block.at("counts");
        const int pass = static_cast<int>(counts.at("pass").asInt());
        const int warn = static_cast<int>(counts.at("warn").asInt());
        const int fail = static_cast<int>(counts.at("fail").asInt());
        totalPass += pass;
        totalWarn += warn;
        totalFail += fail;
        table.row({bench, std::to_string(pass), std::to_string(warn),
                   std::to_string(fail),
                   block.at("verdict").asString()});
        if (fail > 0)
            ok = false;
        artifacts.push_back(std::move(artifact));
    }
    if (!quiet) {
        table.print();
        std::printf("overall: %s (%d pass, %d warn, %d fail across %zu "
                    "artifacts)\n",
                    ok ? (totalWarn ? "PASS with warnings" : "PASS")
                       : "FAIL",
                    totalPass, totalWarn, totalFail, artifacts.size());
    }

    if (!emitPath.empty() || !checkPath.empty()) {
        const std::string rendered =
            qei::validate::renderExperiments(artifacts);
        if (!emitPath.empty()) {
            std::ofstream out(emitPath, std::ios::binary);
            out << rendered;
            if (!out) {
                std::fprintf(stderr,
                             "qei-validate: cannot write %s\n",
                             emitPath.c_str());
                ok = false;
            } else if (!quiet) {
                std::printf("wrote %s (%zu bytes)\n", emitPath.c_str(),
                            rendered.size());
            }
        }
        if (!checkPath.empty()) {
            std::string committed;
            if (!readFile(checkPath, &committed)) {
                std::fprintf(stderr,
                             "qei-validate: cannot read %s\n",
                             checkPath.c_str());
                ok = false;
            } else if (committed != rendered) {
                std::fprintf(
                    stderr,
                    "qei-validate: %s is stale (differs from the "
                    "regeneration; run scripts/run_benches.sh "
                    "--validate and copy BENCH_out/EXPERIMENTS.md "
                    "over it)\n",
                    checkPath.c_str());
                ok = false;
            } else if (!quiet) {
                std::printf("%s matches the regeneration\n",
                            checkPath.c_str());
            }
        }
    }
    return ok ? 0 : 1;
}
